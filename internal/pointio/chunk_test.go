package pointio

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/geom"
)

// drain reads src to exhaustion with the given chunk capacity (in points)
// and returns everything it produced plus the terminal error.
func drain(t *testing.T, src Source, chunkPts int) (*geom.Points, error) {
	t.Helper()
	dim := src.Dim()
	pts := &geom.Points{Dim: dim}
	buf := make([]float64, chunkPts*dim)
	for {
		n, err := src.Next(buf)
		if n > 0 {
			pts.Coords = append(pts.Coords, buf[:n*dim]...)
		}
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return pts, err
		}
		if n == 0 {
			t.Fatal("Next returned 0 points with nil error")
		}
	}
}

// TestChunkReadersMatchSlurp: for both formats and several chunk sizes, the
// chunked readers must produce exactly the coordinates the slurp readers do.
func TestChunkReadersMatchSlurp(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{N: 537, Dim: 3, Components: 4, Alpha: 1}, 7)
	var csv, bin bytes.Buffer
	if err := WriteCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, pts); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, 1000} {
		for _, mode := range []string{"csv", "binary", "points"} {
			var src Source
			var err error
			switch mode {
			case "csv":
				src, err = NewCSVChunkReader(bytes.NewReader(csv.Bytes()))
			case "binary":
				src, err = NewBinaryChunkReader(bytes.NewReader(bin.Bytes()))
			case "points":
				src = FromPoints(pts)
			}
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", mode, chunk, err)
			}
			if src.Dim() != pts.Dim {
				t.Fatalf("%s chunk=%d: dim %d, want %d", mode, chunk, src.Dim(), pts.Dim)
			}
			got, err := drain(t, src, chunk)
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", mode, chunk, err)
			}
			if got.N() != pts.N() {
				t.Fatalf("%s chunk=%d: %d points, want %d", mode, chunk, got.N(), pts.N())
			}
			for i := range pts.Coords {
				if got.Coords[i] != pts.Coords[i] {
					t.Fatalf("%s chunk=%d: coord %d diverged", mode, chunk, i)
				}
			}
			// The stream must stay cleanly terminated.
			if n, err := src.Next(make([]float64, pts.Dim)); n != 0 || err != io.EOF {
				t.Fatalf("%s chunk=%d: post-EOF Next = (%d, %v)", mode, chunk, n, err)
			}
		}
	}
}

// TestCSVChunkReaderErrors pins the CSV failure modes: empty input fails at
// construction, a ragged or malformed record fails the stream mid-way with
// the points before it already delivered.
func TestCSVChunkReaderErrors(t *testing.T) {
	if _, err := NewCSVChunkReader(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := NewCSVChunkReader(strings.NewReader("# only comments\n\n")); err == nil {
		t.Fatal("comment-only input accepted")
	}
	if _, err := NewCSVChunkReader(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("malformed first record accepted")
	}

	src, err := NewCSVChunkReader(strings.NewReader("1,2\n3,4\n5\n"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 8*2)
	n, err := src.Next(buf)
	if n != 2 || err != nil {
		// The two good records arrive before the ragged row surfaces.
		t.Fatalf("Next = (%d, %v), want (2, nil)", n, err)
	}
	if _, err := src.Next(buf); err == nil || err == io.EOF {
		t.Fatalf("ragged record error lost: %v", err)
	}
	// The error is sticky.
	if _, err2 := src.Next(buf); err2 == nil || err2 == io.EOF {
		t.Fatalf("error not sticky: %v", err2)
	}
}

// TestBinaryChunkReaderTruncation pins the binary failure modes: every cut
// below the header's promise — at a point boundary or inside one point's
// coordinates — is a hard error, not a short stream.
func TestBinaryChunkReaderTruncation(t *testing.T) {
	pts := datagen.Blobs(10, 2, 0.1, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 4, len(full) - 8, len(full) - 9, 17} {
		src, err := NewBinaryChunkReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: header rejected: %v", cut, err)
		}
		if _, err := drain(t, src, 3); err == nil {
			t.Fatalf("cut=%d: truncated stream accepted", cut)
		}
	}
	if _, err := NewBinaryChunkReader(bytes.NewReader(full[:10])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestChunkBufferTooSmall: a destination that cannot hold one point is a
// caller bug and must be reported, never mistaken for EOF.
func TestChunkBufferTooSmall(t *testing.T) {
	pts := datagen.Blobs(4, 3, 0.1, 1) // dim 2
	var bin bytes.Buffer
	if err := WriteBinary(&bin, pts); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	csvSrc, err := NewCSVChunkReader(&csv)
	if err != nil {
		t.Fatal(err)
	}
	binSrc, err := NewBinaryChunkReader(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []Source{csvSrc, binSrc, FromPoints(pts)} {
		if _, err := src.Next(make([]float64, 1)); err == nil || err == io.EOF {
			t.Fatalf("%T: undersized buffer not rejected: %v", src, err)
		}
		// The reader must still work afterwards with a proper buffer.
		if n, err := src.Next(make([]float64, 2)); n != 1 || err != nil {
			t.Fatalf("%T: recovery Next = (%d, %v)", src, n, err)
		}
	}
}
