// Package pointio reads and writes point sets as CSV (one point per line,
// comma-separated coordinates) and as a compact binary format used by the
// data-generation and clustering command-line tools.
package pointio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"rpdbscan/internal/geom"
)

// WriteCSV writes pts one point per line with full float64 round-trip
// precision.
func WriteCSV(w io.Writer, pts *geom.Points) error {
	bw := bufio.NewWriter(w)
	n := pts.N()
	var sb []byte
	for i := 0; i < n; i++ {
		row := pts.At(i)
		sb = sb[:0]
		for j, v := range row {
			if j > 0 {
				sb = append(sb, ',')
			}
			sb = strconv.AppendFloat(sb, v, 'g', -1, 64)
		}
		sb = append(sb, '\n')
		if _, err := bw.Write(sb); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a CSV point file. The dimensionality is inferred from the
// first non-empty line; all lines must agree. Blank lines and lines
// starting with '#' are skipped.
func ReadCSV(r io.Reader) (*geom.Points, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var pts *geom.Points
	var row []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if pts == nil {
			pts = geom.NewPoints(len(fields), 1024)
			row = make([]float64, len(fields))
		}
		if len(fields) != pts.Dim {
			return nil, fmt.Errorf("pointio: line %d has %d fields, want %d", lineNo, len(fields), pts.Dim)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("pointio: line %d field %d: %w", lineNo, j+1, err)
			}
			row[j] = v
		}
		pts.Append(row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pts == nil {
		return nil, fmt.Errorf("pointio: no points in input")
	}
	return pts, nil
}

const binMagic = "RPPT"

// WriteBinary writes pts in the binary format: magic, dim uint32, count
// uint64, then little-endian float64 coordinates point-major.
func WriteBinary(w io.Writer, pts *geom.Points) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(pts.Dim))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(pts.N()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range pts.Coords {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*geom.Points, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+12)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("pointio: short header: %w", err)
	}
	if string(head[:4]) != binMagic {
		return nil, fmt.Errorf("pointio: bad magic %q", head[:4])
	}
	dim := int(binary.LittleEndian.Uint32(head[4:8]))
	n := binary.LittleEndian.Uint64(head[8:])
	if dim < 1 || dim > 1<<16 {
		return nil, fmt.Errorf("pointio: implausible dimension %d", dim)
	}
	total := n * uint64(dim)
	if total/uint64(dim) != n {
		return nil, fmt.Errorf("pointio: count %d overflows", n)
	}
	// Do not trust the header's count for the allocation: a corrupt or
	// hostile header must not balloon memory. Start small and grow as
	// actual data arrives.
	capHint := total
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	pts := &geom.Points{Dim: dim, Coords: make([]float64, 0, capHint)}
	var buf [8]byte
	for i := uint64(0); i < total; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("pointio: truncated data: %w", err)
		}
		pts.Coords = append(pts.Coords, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return pts, nil
}
