// Package pointio reads and writes point sets as CSV (one point per line,
// comma-separated coordinates) and as a compact binary format used by the
// data-generation and clustering command-line tools.
package pointio

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"
	"strconv"

	"rpdbscan/internal/geom"
)

// WriteCSV writes pts one point per line with full float64 round-trip
// precision.
func WriteCSV(w io.Writer, pts *geom.Points) error {
	bw := bufio.NewWriter(w)
	n := pts.N()
	var sb []byte
	for i := 0; i < n; i++ {
		row := pts.At(i)
		sb = sb[:0]
		for j, v := range row {
			if j > 0 {
				sb = append(sb, ',')
			}
			sb = strconv.AppendFloat(sb, v, 'g', -1, 64)
		}
		sb = append(sb, '\n')
		if _, err := bw.Write(sb); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a CSV point file. The dimensionality is inferred from the
// first non-empty line; all lines must agree. Blank lines and lines
// starting with '#' are skipped. It is the slurp form of NewCSVChunkReader:
// both paths share one parser, so they accept exactly the same inputs.
func ReadCSV(r io.Reader) (*geom.Points, error) {
	src, err := NewCSVChunkReader(r)
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}

const binMagic = "RPPT"

// WriteBinary writes pts in the binary format: magic, dim uint32, count
// uint64, then little-endian float64 coordinates point-major.
func WriteBinary(w io.Writer, pts *geom.Points) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(pts.Dim))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(pts.N()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range pts.Coords {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the binary format written by WriteBinary. It is the
// slurp form of NewBinaryChunkReader; the chunked drain keeps allocation
// growing with actual data, never with a hostile header count.
func ReadBinary(r io.Reader) (*geom.Points, error) {
	src, err := NewBinaryChunkReader(r)
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}
