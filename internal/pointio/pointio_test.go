package pointio

import (
	"bytes"
	"strings"
	"testing"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/geom"
)

func TestCSVRoundTrip(t *testing.T) {
	pts := datagen.Moons(200, 0.05, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != pts.N() || got.Dim != pts.Dim {
		t.Fatalf("shape changed: %dx%d", got.N(), got.Dim)
	}
	for i := range pts.Coords {
		if got.Coords[i] != pts.Coords[i] {
			t.Fatalf("coordinate %d changed: %v vs %v", i, got.Coords[i], pts.Coords[i])
		}
	}
}

func TestCSVCommentsAndBlanks(t *testing.T) {
	in := "# header\n1,2\n\n3,4\n"
	pts, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if pts.N() != 2 || pts.At(1)[1] != 4 {
		t.Fatalf("parsed %+v", pts)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	pts := datagen.Mixture(datagen.MixtureConfig{N: 500, Dim: 13, Components: 3, Alpha: 1}, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != pts.N() || got.Dim != pts.Dim {
		t.Fatalf("shape changed: %dx%d", got.N(), got.Dim)
	}
	for i := range pts.Coords {
		if got.Coords[i] != pts.Coords[i] {
			t.Fatal("coordinates changed")
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XX")); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ReadBinary(strings.NewReader("XXXX\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	pts := geom.NewPoints(2, 1)
	pts.Append([]float64{1, 2})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated data accepted")
	}
}
