// Command rpdatagen writes the synthetic data sets of the evaluation to
// CSV or binary point files.
//
// Usage:
//
//	rpdatagen -dataset geolife -n 100000 -o points.csv
//
// Data sets: geolife, cosmo, osm, teraclick (the Table 3 stand-ins),
// moons, blobs, chameleon (the Section 7.5 accuracy sets), and mixture
// (the Appendix B Gaussian mixture; use -dim and -alpha).
package main

import (
	"flag"
	"log/slog"
	"os"
	"strings"

	"rpdbscan/internal/datagen"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/pointio"
)

func main() {
	dataset := flag.String("dataset", "", "geolife|cosmo|osm|teraclick|moons|blobs|chameleon|mixture (required)")
	n := flag.Int("n", 20000, "number of points")
	seed := flag.Int64("seed", 1, "RNG seed")
	dim := flag.Int("dim", 3, "mixture: dimensionality")
	alpha := flag.Float64("alpha", 1, "mixture: skewness coefficient")
	noise := flag.Float64("noise", 0.04, "moons: coordinate noise std")
	centers := flag.Int("centers", 5, "blobs: number of centres")
	binary := flag.Bool("binary", false, "write binary format instead of CSV")
	out := flag.String("o", "", "output path (default stdout)")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpdatagen", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpdatagen")

	var pts *geom.Points
	switch strings.ToLower(*dataset) {
	case "geolife":
		pts = datagen.SimGeoLife(*n, *seed).Points
	case "cosmo":
		pts = datagen.SimCosmo(*n, *seed).Points
	case "osm":
		pts = datagen.SimOSM(*n, *seed).Points
	case "teraclick":
		pts = datagen.SimTeraClick(*n, *seed).Points
	case "moons":
		pts = datagen.Moons(*n, *noise, *seed)
	case "blobs":
		pts = datagen.Blobs(*n, *centers, 0.4, *seed)
	case "chameleon":
		pts = datagen.Chameleon(*n, *seed)
	case "mixture":
		pts = datagen.Mixture(datagen.MixtureConfig{
			N: *n, Dim: *dim, Components: 10, Span: 100, Alpha: *alpha,
		}, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Error("create output", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *binary {
		err = pointio.WriteBinary(w, pts)
	} else {
		err = pointio.WriteCSV(w, pts)
	}
	if err != nil {
		log.Error("write points", "err", err)
		os.Exit(1)
	}
	log.Info("wrote points", "points", pts.N(), "dim", pts.Dim)
}
