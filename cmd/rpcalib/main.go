// Command rpcalib probes the simulated data sets: for each data set and
// each eps of its sweep it reports cluster count, noise fraction, and core
// fraction under exact DBSCAN semantics via RP-DBSCAN at rho=0.01. It is a
// calibration aid for the generator defaults.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/metrics"
	"rpdbscan/internal/obs"
)

func main() {
	n := flag.Int("n", 20000, "points")
	seed := flag.Int64("seed", 1, "seed")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpcalib", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpcalib")
	for _, ds := range datagen.Suite(*n, *seed) {
		log.Debug("probing data set", "dataset", ds.Name)
		for _, eps := range ds.EpsSweep() {
			cl := engine.New(8)
			cl.Sink = obs.NewSink(log)
			res, err := core.Run(ds.Points, core.Config{
				Eps: eps, MinPts: ds.MinPts, Rho: 0.01, NumPartitions: 8,
			}, cl)
			if err != nil {
				log.Error("run failed", "dataset", ds.Name, "eps", eps, "err", err)
				continue
			}
			nn := metrics.NumNoise(res.Labels)
			ncore := 0
			for _, c := range res.CorePoint {
				if c {
					ncore++
				}
			}
			fmt.Printf("%-14s eps=%-8.3g clusters=%-5d noise=%5.1f%% core=%5.1f%%\n",
				ds.Name, eps, res.NumClusters,
				100*float64(nn)/float64(len(res.Labels)),
				100*float64(ncore)/float64(len(res.Labels)))
		}
	}
}
