// Command rpcalib probes the simulated data sets: for each data set and
// each eps of its sweep it reports cluster count, noise fraction, and core
// fraction under exact DBSCAN semantics via RP-DBSCAN at rho=0.01. It is a
// calibration aid for the generator defaults.
package main

import (
	"flag"
	"fmt"

	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/metrics"
)

func main() {
	n := flag.Int("n", 20000, "points")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()
	for _, ds := range datagen.Suite(*n, *seed) {
		for _, eps := range ds.EpsSweep() {
			res, err := core.Run(ds.Points, core.Config{
				Eps: eps, MinPts: ds.MinPts, Rho: 0.01, NumPartitions: 8,
			}, engine.New(8))
			if err != nil {
				fmt.Println(ds.Name, err)
				continue
			}
			nn := metrics.NumNoise(res.Labels)
			ncore := 0
			for _, c := range res.CorePoint {
				if c {
					ncore++
				}
			}
			fmt.Printf("%-14s eps=%-8.3g clusters=%-5d noise=%5.1f%% core=%5.1f%%\n",
				ds.Name, eps, res.NumClusters,
				100*float64(nn)/float64(len(res.Labels)),
				100*float64(ncore)/float64(len(res.Labels)))
		}
	}
}
