// Command rpbench regenerates the tables and figures of the RP-DBSCAN
// paper's evaluation as text tables. Each experiment is named after the
// paper artifact it reproduces.
//
// Usage:
//
//	rpbench [flags] [experiment ...]
//
// Experiments: fig11 fig12 fig13 fig14 fig15 table4 table5 table7 fig18
// table8 fig19 fig20 fig21 phase2 phase3 chaos serve stream transport
// registry, or "all". With no arguments, "all" runs.
//
// Flags:
//
//	-n       points per data set (default 20000)
//	-workers virtual cluster size (default 40)
//	-minpts  DBSCAN minPts (default: per-data-set calibration)
//	-density point-density multiplier (default 20, the paper's regime)
//	-seed    RNG seed (default 1)
//	-quick   small preset (n=3000, workers=8) for smoke runs
//	-svgdir  also render Figures 16/18 as SVG files into this directory
//	-csvdir  also write machine-readable CSVs into this directory
//	-phase2out  where the phase2 experiment writes BENCH_phase2.json ("" skips)
//	-phase3out  where the phase3 experiment writes BENCH_phase3.json ("" skips)
//	-chaosout   where the chaos experiment writes BENCH_chaos.json ("" skips)
//	-serveout   where the serve experiment writes BENCH_serve.json ("" skips)
//	-streamout  where the stream experiment writes BENCH_stream.json ("" skips)
//	-transportout  where the transport experiment writes BENCH_transport.json ("" skips)
//	-registryout   where the registry experiment writes BENCH_registry.json ("" skips)
//	-log-level / -log-format  structured logging (stderr); debug logs stage events
//	-debug-addr  serve /metrics, /healthz, /debug/pprof and /debug/vars for
//	             live profiling and scraping
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rpdbscan"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/harness"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/plot"
	"rpdbscan/internal/registry"
	"rpdbscan/internal/serve"
	"rpdbscan/internal/serve/loadgen"
	"rpdbscan/internal/transport"
)

func main() {
	// The transport experiment re-executes this binary as its worker
	// processes; a child with the marker set serves tasks and never returns.
	transport.MaybeWorker()
	n := flag.Int("n", 20000, "points per data set")
	workers := flag.Int("workers", 40, "virtual cluster size")
	minPts := flag.Int("minpts", 0, "DBSCAN minPts (0: per-data-set default)")
	seed := flag.Int64("seed", 1, "RNG seed")
	density := flag.Float64("density", 20, "point-density multiplier vs the calibrated reference; ~5 reproduces the paper's dense-neighborhood regime")
	quick := flag.Bool("quick", false, "small smoke-test preset")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/vars on this address")
	flag.StringVar(&svgDir, "svgdir", "", "when set, fig16/fig18 also render scatter plots as SVG files here")
	flag.StringVar(&csvDir, "csvdir", "", "when set, experiments also write machine-readable CSV files here")
	flag.StringVar(&phase2Out, "phase2out", "BENCH_phase2.json", "where the phase2 experiment writes its JSON report (empty: skip)")
	flag.StringVar(&phase3Out, "phase3out", "BENCH_phase3.json", "where the phase3 experiment writes its JSON report (empty: skip)")
	flag.StringVar(&chaosOut, "chaosout", "BENCH_chaos.json", "where the chaos experiment writes its JSON report (empty: skip)")
	flag.StringVar(&serveOut, "serveout", "BENCH_serve.json", "where the serve experiment writes its JSON report (empty: skip)")
	flag.StringVar(&refitOut, "refitout", "BENCH_refit.json", "where the refit experiment writes its JSON report (empty: skip)")
	flag.StringVar(&streamOut, "streamout", "BENCH_stream.json", "where the stream experiment writes its JSON report (empty: skip)")
	flag.StringVar(&transportOut, "transportout", "BENCH_transport.json", "where the transport experiment writes its JSON report (empty: skip)")
	flag.StringVar(&registryOut, "registryout", "BENCH_registry.json", "where the registry experiment writes its JSON report (empty: skip)")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpbench", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpbench")
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, log); err != nil {
			log.Error("debug server", "err", err)
			os.Exit(1)
		}
	}

	scale := harness.Scale{N: *n, Workers: *workers, MinPts: *minPts, Seed: *seed, Rho: 0.01, Density: *density}
	if *quick {
		scale = harness.QuickScale()
		scale.Seed = *seed
		scale.Density = *density
	}

	want := flag.Args()
	if len(want) == 0 {
		want = []string{"all"}
	}
	all := map[string]func(harness.Scale) error{
		"fig11":     fig11,
		"fig16":     fig16,
		"fig12":     fig12,
		"fig13":     fig13,
		"fig14":     fig14,
		"fig15":     fig15,
		"table4":    table4,
		"table5":    table5,
		"table7":    table7,
		"fig18":     fig18,
		"table8":    table8,
		"fig19":     fig19,
		"fig20":     fig20,
		"fig21":     fig21,
		"phase2":    phase2,
		"phase3":    phase3,
		"chaos":     chaosExp,
		"serve":     serveExp,
		"refit":     refitExp,
		"stream":    streamExp,
		"transport": transportExp,
		"registry":  registryExp,
	}
	order := []string{"fig11", "fig12", "fig13", "fig14", "fig15", "table4", "fig16", "table5", "table7", "fig18", "table8", "fig19", "fig20", "fig21", "phase2", "phase3", "chaos", "serve", "refit", "stream", "transport", "registry"}

	run := map[string]bool{}
	for _, w := range want {
		if w == "all" {
			for _, o := range order {
				run[o] = true
			}
			continue
		}
		if _, ok := all[w]; !ok {
			log.Error("unknown experiment", "experiment", w, "have", strings.Join(order, " ")+", all")
			os.Exit(2)
		}
		run[w] = true
	}
	for _, name := range order {
		if !run[name] {
			continue
		}
		start := time.Now()
		log.Debug("experiment start", "experiment", name)
		if err := all[name](scale); err != nil {
			log.Error("experiment failed", "experiment", name, "err", err)
			os.Exit(1)
		}
		fmt.Printf("  (%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func header(title string) {
	fmt.Printf("==== %s ====\n", title)
}

// csvDir is where experiments write machine-readable CSV copies (empty =
// skip).
var csvDir string

// writeCSV writes rows (with a header) to csvDir/name, when enabled.
func writeCSV(name, header string, rows []string) error {
	if csvDir == "" {
		return nil
	}
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	path := filepath.Join(csvDir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// effCache memoises the efficiency sweep shared by fig11, fig13, and
// fig14 so "all" pays for it once.
var effCache []harness.EfficiencyRow

func efficiencyRows(s harness.Scale) ([]harness.EfficiencyRow, error) {
	if effCache != nil {
		return effCache, nil
	}
	rows, err := harness.Efficiency(s, harness.EfficiencyConfig{})
	if err != nil {
		return nil, err
	}
	effCache = rows
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%s,%g,%s,%d,%.4f,%d,%d",
			r.Dataset, r.Eps, r.Algorithm, r.Elapsed.Milliseconds(), r.Imbalance, r.Processed, r.Clusters))
	}
	if err := writeCSV("efficiency.csv", "dataset,eps,algorithm,elapsed_ms,imbalance,points_processed,clusters", lines); err != nil {
		return nil, err
	}
	return rows, nil
}

// fig11: total elapsed time of the six parallel algorithms (also Table 6).
func fig11(s harness.Scale) error {
	header("Figure 11 / Table 6: total elapsed time (simulated, ms)")
	rows, err := efficiencyRows(s)
	if err != nil {
		return err
	}
	printEff(rows, func(r harness.EfficiencyRow) string {
		return fmt.Sprintf("%d", r.Elapsed.Milliseconds())
	})
	return nil
}

// fig13: load imbalance of local clustering.
func fig13(s harness.Scale) error {
	header("Figure 13: load imbalance (slowest/fastest split)")
	rows, err := efficiencyRows(s)
	if err != nil {
		return err
	}
	printEff(rows, func(r harness.EfficiencyRow) string {
		return fmt.Sprintf("%.2f", r.Imbalance)
	})
	return nil
}

// fig14: total points processed (data duplication).
func fig14(s harness.Scale) error {
	header("Figure 14: total points processed across splits")
	rows, err := efficiencyRows(s)
	if err != nil {
		return err
	}
	printEff(rows, func(r harness.EfficiencyRow) string {
		return fmt.Sprintf("%d", r.Processed)
	})
	return nil
}

// printEff prints dataset-grouped tables: one row per algorithm, one column
// per eps.
func printEff(rows []harness.EfficiencyRow, cell func(harness.EfficiencyRow) string) {
	byDS := map[string][]harness.EfficiencyRow{}
	var dsOrder []string
	for _, r := range rows {
		if _, ok := byDS[r.Dataset]; !ok {
			dsOrder = append(dsOrder, r.Dataset)
		}
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for _, ds := range dsOrder {
		sub := byDS[ds]
		var epss []float64
		seen := map[float64]bool{}
		for _, r := range sub {
			if !seen[r.Eps] {
				seen[r.Eps] = true
				epss = append(epss, r.Eps)
			}
		}
		sort.Float64s(epss)
		fmt.Printf("-- %s --\n%-14s", ds, "eps:")
		for _, e := range epss {
			fmt.Printf("%12.4g", e)
		}
		fmt.Println()
		var algos []string
		seenA := map[string]bool{}
		for _, r := range sub {
			if !seenA[r.Algorithm] {
				seenA[r.Algorithm] = true
				algos = append(algos, r.Algorithm)
			}
		}
		for _, a := range algos {
			fmt.Printf("%-14s", a)
			for _, e := range epss {
				for _, r := range sub {
					if r.Algorithm == a && r.Eps == e {
						fmt.Printf("%12s", cell(r))
					}
				}
			}
			fmt.Println()
		}
	}
}

func fig12(s harness.Scale) error {
	header("Figure 12: breakdown of RP-DBSCAN elapsed time")
	rows, err := harness.Breakdown(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-14s", r.Dataset)
		for _, ph := range r.Order {
			fmt.Printf("  %s=%.2f", ph, r.Phases[ph])
		}
		fmt.Printf("  (total %v)\n", r.Total.Round(time.Millisecond))
	}
	return nil
}

func fig15(s harness.Scale) error {
	header("Figure 15: speed-up vs number of cores (SimCosmo)")
	rows, err := harness.SpeedUp(s)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s", "cores:")
	for _, w := range rows[0].Workers {
		fmt.Printf("%8d", w)
	}
	fmt.Println()
	var lines []string
	for _, r := range rows {
		fmt.Printf("%-14s", r.Algorithm)
		for _, su := range r.SpeedUp {
			fmt.Printf("%8.2f", su)
		}
		fmt.Println()
		for i, w := range r.Workers {
			lines = append(lines, fmt.Sprintf("%s,%d,%.4f", r.Algorithm, w, r.SpeedUp[i]))
		}
	}
	if err := writeCSV("speedup.csv", "algorithm,workers,speedup", lines); err != nil {
		return err
	}
	return nil
}

func table4(s harness.Scale) error {
	header("Table 4: accuracy of RP-DBSCAN (Rand index vs exact DBSCAN)")
	rows, err := harness.Accuracy(s)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %8s %8s\n", "Data Set", "0.10", "0.05", "0.01")
	byDS := map[string]map[float64]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := byDS[r.Dataset]; !ok {
			byDS[r.Dataset] = map[float64]float64{}
			order = append(order, r.Dataset)
		}
		byDS[r.Dataset][r.Rho] = r.RandIndex
	}
	for _, ds := range order {
		fmt.Printf("%-12s %8.3f %8.3f %8.3f\n", ds, byDS[ds][0.10], byDS[ds][0.05], byDS[ds][0.01])
	}
	// Section 2.2.1 motivation: naive random point splits lose accuracy
	// where RP-DBSCAN's broadcast dictionary does not.
	nrows, err := harness.NaiveComparison(s)
	if err != nil {
		return err
	}
	fmt.Println("-- naive random split (Sec. 2.2.1) vs RP-DBSCAN --")
	for _, r := range nrows {
		fmt.Printf("%-12s naive=%.3f  rp=%.3f\n", r.Dataset, r.RINaive, r.RIRP)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%s,%g,%.6f", r.Dataset, r.Rho, r.RandIndex))
	}
	if err := writeCSV("accuracy.csv", "dataset,rho,rand_index", lines); err != nil {
		return err
	}
	return nil
}

func table5(s harness.Scale) error {
	header("Table 5: size of the two-level cell dictionary (% of data)")
	rows, err := harness.DictionarySize(s)
	if err != nil {
		return err
	}
	cur := ""
	for _, r := range rows {
		if r.Dataset != cur {
			cur = r.Dataset
			fmt.Printf("-- %s --\n", cur)
		}
		fmt.Printf("  eps=%-10.4g ratio=%6.2f%%  cells=%-8d subs=%-8d encoded=%dB\n",
			r.Eps, 100*r.Ratio, r.Cells, r.Subs, r.Bytes)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%s,%g,%.6f,%d,%d,%d,%d",
			r.Dataset, r.Eps, r.Ratio, r.Bits, r.Bytes, r.Cells, r.Subs))
	}
	if err := writeCSV("dictsize.csv", "dataset,eps,ratio,bits,bytes,cells,subcells", lines); err != nil {
		return err
	}
	return nil
}

func table7(s harness.Scale) error {
	header("Table 7: edges remaining after each merge round")
	rows, err := harness.EdgeReduction(s)
	if err != nil {
		return err
	}
	var lines []string
	for _, r := range rows {
		fmt.Printf("%-14s eps=%-10.4g", r.Dataset, r.Eps)
		for i, e := range r.Edges {
			fmt.Printf(" r%d=%d", i, e)
			lines = append(lines, fmt.Sprintf("%s,%g,%d,%d", r.Dataset, r.Eps, i, e))
		}
		fmt.Println()
	}
	if err := writeCSV("edges.csv", "dataset,eps,round,edges", lines); err != nil {
		return err
	}
	return nil
}

func fig18(s harness.Scale) error {
	header("Figure 18: synthetic skewness data sets (densest-cell share)")
	for _, r := range harness.SkewStats(s) {
		fmt.Printf("  alpha=%-6.3f top-cell share=%.3f\n", r.Alpha, r.TopCellShare)
	}
	if svgDir != "" {
		for i, alpha := range harness.SkewAlphas() {
			pts := datagen.Mixture(datagen.MixtureConfig{
				N: s.N, Dim: 2, Components: 10, Span: 100, Alpha: alpha,
			}, s.Seed)
			name := filepath.Join(svgDir, fmt.Sprintf("fig18_alpha_%d.svg", i))
			svg := plot.ScatterSVG(pts, nil, plot.Options{Title: fmt.Sprintf("alpha = %.3f", alpha)})
			if err := os.WriteFile(name, svg, 0o644); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", name)
		}
	}
	return nil
}

// svgDir is where fig16/fig18 render SVG scatter plots (empty = skip).
var svgDir string

// fig16 renders RP-DBSCAN's clustering of the synthetic accuracy sets.
func fig16(s harness.Scale) error {
	header("Figure 16: clustering results of RP-DBSCAN")
	imgs, err := harness.Figure16(s)
	if err != nil {
		return err
	}
	for _, img := range imgs {
		clusters := map[int]bool{}
		noise := 0
		for _, l := range img.Labels {
			if l < 0 {
				noise++
			} else {
				clusters[l] = true
			}
		}
		fmt.Printf("  %-12s %d clusters, %d noise of %d points\n",
			img.Name, len(clusters), noise, len(img.Labels))
		if svgDir != "" {
			name := filepath.Join(svgDir, fmt.Sprintf("fig16_%s.svg", strings.ToLower(img.Name)))
			svg := plot.ScatterSVG(img.Points, img.Labels, plot.Options{Title: img.Name})
			if err := os.WriteFile(name, svg, 0o644); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", name)
		}
	}
	return nil
}

func table8(s harness.Scale) error {
	header("Table 8: dictionary size for synthetic data sets")
	rows, err := harness.SkewDictionarySize(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  dim=%d alpha=%-6.3f encoded=%-10d bits(Lemma4.3)=%d\n", r.Dim, r.Alpha, r.Bytes, r.Bits)
	}
	return nil
}

func fig19(s harness.Scale) error {
	header("Figure 19: impact of data skewness on RP-DBSCAN")
	rows, err := harness.SkewImpact(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  dim=%d alpha=%-6.3f imbalance=%-6.2f elapsed=%v\n",
			r.Dim, r.Alpha, r.Imbalance, r.Elapsed.Round(time.Millisecond))
	}
	return nil
}

func fig20(s harness.Scale) error {
	header("Figure 20: scalability of RP-DBSCAN to data size")
	rows, err := harness.SizeScaling(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  x%-3d n=%-9d elapsed=%v\n", r.Multiplier, r.N, r.Elapsed.Round(time.Millisecond))
	}
	return nil
}

// phase2Out is where the phase2 experiment writes its JSON report (empty =
// skip).
var phase2Out string

// phase2: Phase II hot-path benchmark — blocked SoA kernels vs the scalar
// batched path vs the per-point oracle, swept over dim and size.
func phase2(s harness.Scale) error {
	header("Phase II: blocked vs batched vs per-point region queries (skewed mixture)")
	rows, err := harness.Phase2(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  n=%-6d dim=%d %-10s stage=%9.1fms  %10.0f ns/op  %8.3f allocs/op  %12.0f points/sec  RI=%.4f  speedup=%.2fx\n",
			r.N, r.Dim, r.Mode, r.StageMillis, r.NsPerOp, r.AllocsPerOp, r.PointsPerSec, r.RandIndex, r.Speedup)
		if r.RandIndex != 1 {
			return fmt.Errorf("phase2: mode %s (n=%d dim=%d) diverged from blocked labels (Rand index %v)", r.Mode, r.N, r.Dim, r.RandIndex)
		}
	}
	if phase2Out != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(phase2Out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", phase2Out)
	}
	return nil
}

// phase3Out is where the phase3 experiment writes its JSON report (empty =
// skip).
var phase3Out string

// phase3: Phase III merge benchmark — the flat lock-free merge against the
// serial pairwise tournament on generated partition subgraphs.
func phase3(s harness.Scale) error {
	header("Phase III: flat lock-free merge vs serial tournament")
	rows, err := harness.Phase3(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-10s workers=%d cells=%-7d subgraphs=%-3d edges=%-8d %9.3fms  speedup=%.2fx  identical=%v\n",
			r.Mode, r.Workers, r.Cells, r.Subgraphs, r.Edges, r.Millis, r.Speedup, r.Identical)
		if !r.Identical {
			return fmt.Errorf("phase3: mode %s workers=%d diverged from the tournament components", r.Mode, r.Workers)
		}
	}
	if phase3Out != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(phase3Out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", phase3Out)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%s,%d,%d,%d,%d,%.3f,%.4f,%v",
			r.Mode, r.Workers, r.Cells, r.Subgraphs, r.Edges, r.Millis, r.Speedup, r.Identical))
	}
	return writeCSV("phase3.csv", "mode,workers,cells,subgraphs,edges,millis,speedup,identical", lines)
}

// chaosOut is where the chaos experiment writes its JSON report (empty =
// skip).
var chaosOut string

// chaosExp: fault-injection sweep — clustering equivalence and bounded
// makespan degradation under deterministic chaos.
func chaosExp(s harness.Scale) error {
	header("Chaos: clustering under deterministic fault injection")
	rows, err := harness.Chaos(s, harness.DefaultChaosConfig())
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  rate=%.2f seed=%d w=%-3d identical=%-5v accounted=%-5v inj=%-4d cksum=%-4d spec=%d/%d sim=%9.1fms base=%9.1fms bound=%9.1fms\n",
			r.Rate, r.Seed, r.Workers, r.Identical, r.Accounted,
			r.InjectedFailures, r.ChecksumRejects, r.SpeculativeLaunches, r.SpeculativeWins,
			r.SimulatedMillis, r.BaselineMillis, r.BoundMillis)
		if !r.Identical {
			return fmt.Errorf("chaos: rate=%.2f seed=%d workers=%d diverged from fault-free clustering",
				r.Rate, r.Seed, r.Workers)
		}
		if !r.Accounted {
			return fmt.Errorf("chaos: rate=%.2f seed=%d workers=%d fault ledger does not reconcile",
				r.Rate, r.Seed, r.Workers)
		}
	}
	if chaosOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(chaosOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", chaosOut)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%.2f,%d,%d,%v,%v,%d,%d,%d,%d,%.3f,%.3f,%.3f",
			r.Rate, r.Seed, r.Workers, r.Identical, r.Accounted, r.InjectedFailures,
			r.ChecksumRejects, r.SpeculativeLaunches, r.SpeculativeWins,
			r.SimulatedMillis, r.BaselineMillis, r.BoundMillis))
	}
	return writeCSV("chaos.csv",
		"rate,seed,workers,identical,accounted,injected_failures,checksum_rejects,spec_launches,spec_wins,simulated_ms,baseline_ms,bound_ms", lines)
}

// serveOut is where the serve experiment writes its JSON report (empty =
// skip).
var serveOut string

// serveExp: serving benchmark — fit a model on a deterministic data set,
// then replay the seeded load-generator stream against the in-process
// prediction server and report the latency histogram and throughput. The
// run must sustain the whole stream with zero errors and zero sheds.
func serveExp(s harness.Scale) error {
	header("Serve: prediction-server latency under the seeded load stream")
	pts := datagen.Moons(s.N, 0.05, s.Seed)
	res, err := rpdbscan.ClusterFlat(pts.Coords, pts.Dim, rpdbscan.Options{
		Eps: 0.1, MinPts: 10, Workers: s.Workers, Seed: s.Seed,
	})
	if err != nil {
		return err
	}
	model, err := serve.New(pts.Coords, pts.Dim, res.Labels, res.Core, 0.1, 10, 0.01, res.NumClusters)
	if err != nil {
		return err
	}
	srv := serve.NewServer(model, serve.ServerConfig{})
	cfg := loadgen.Config{
		Seed: s.Seed, Clients: 16, RequestsPerClient: 400,
		BatchEvery: 5, BatchSize: 16, InfoEvery: 37,
	}
	rep, err := loadgen.Run(srv.Handler(), model, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  model: %d points (%d core, %d clusters)\n",
		model.Len(), model.Info().CorePoints, model.Info().Clusters)
	fmt.Printf("  %d requests from %d clients in %.1fms  (%.0f req/s, %d points classified, %.1f%% noise)\n",
		rep.Requests, rep.Clients, rep.ElapsedMS, rep.Throughput, rep.Points, 100*rep.NoiseRate)
	fmt.Printf("  latency: p50=%.0fus  p99=%.0fus  p999=%.0fus  max=%.0fus   ok=%d rejected=%d errors=%d\n",
		rep.P50MicroS, rep.P99MicroS, rep.P999MicroS, rep.MaxMicroS, rep.OK, rep.Rejected, rep.Errors)
	if rep.Errors > 0 || rep.Rejected > 0 {
		return fmt.Errorf("serve: %d errors and %d sheds on the seeded stream (want 0/0)", rep.Errors, rep.Rejected)
	}
	if serveOut != "" {
		out := struct {
			Model serve.Info      `json:"model"`
			Load  *loadgen.Report `json:"load"`
		}{model.Info(), rep}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(serveOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", serveOut)
	}
	var lines []string
	lines = append(lines, fmt.Sprintf("%d,%d,%d,%d,%d,%.1f,%.0f,%.0f,%.0f,%.0f,%.0f",
		rep.Requests, rep.Clients, rep.OK, rep.Rejected, rep.Errors,
		rep.ElapsedMS, rep.Throughput, rep.P50MicroS, rep.P99MicroS, rep.P999MicroS, rep.MaxMicroS))
	return writeCSV("serve.csv",
		"requests,clients,ok,rejected,errors,elapsed_ms,throughput_rps,p50_us,p99_us,p999_us,max_us", lines)
}

// refitOut is where the refit experiment writes its JSON report (empty =
// skip).
var refitOut string

// durQuantile reads quantile q from a sorted slice of durations.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// refitExp: the online loop end to end — ingest a moons stream through a
// live server, refit at watermarks, hot-swap generations — measuring swap
// latency (persist + validate + pointer flip), refit throughput, and the
// serving tail during refits against the same load replayed when the
// refitter is idle.
func refitExp(s harness.Scale) error {
	header("Refit: online ingest, micro-batch refit, atomic hot swap")
	pts := datagen.Moons(s.N, 0.05, s.Seed)
	versions := 8
	watermark := int64(s.N / versions)
	if watermark < 64 {
		watermark = 64
		versions = s.N / int(watermark)
	}
	modelDir, err := os.MkdirTemp("", "rpbench-refit-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(modelDir)

	var mu sync.Mutex
	var events []serve.SwapEvent
	r, err := serve.NewRefitter(serve.RefitConfig{
		Watermark: watermark,
		ModelDir:  modelDir,
		Eps:       0.1, MinPts: 10, Rho: s.Rho,
		Workers: s.Workers, Seed: s.Seed,
		OnSwap: func(ev serve.SwapEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		return err
	}
	h := serve.NewServer(nil, serve.ServerConfig{Refitter: r}).Handler()

	// First watermark up front so the load stream always has a model.
	batch := int(watermark) / 10
	if batch < 1 {
		batch = 1
	}
	ingest := func(from, to int) error {
		for i := from; i < to; i += batch {
			end := i + batch
			if end > to {
				end = to
			}
			if _, _, err := r.Ingest(pts.Coords[i*pts.Dim:end*pts.Dim], pts.Dim); err != nil {
				return err
			}
		}
		return nil
	}
	total := versions * int(watermark)
	if err := ingest(0, int(watermark)); err != nil {
		return err
	}
	for r.Current() == nil {
		time.Sleep(time.Millisecond)
	}
	boot := r.Current().Model

	// Serve under refit: one goroutine streams the remaining points (the
	// refit loop chews through the crossed watermarks) while the seeded
	// load replays against the live handler.
	loadCfg := loadgen.Config{
		Seed: s.Seed, Clients: 16, RequestsPerClient: 400,
		BatchEvery: 5, BatchSize: 16, InfoEvery: 37,
	}
	ingestErr := make(chan error, 1)
	go func() { ingestErr <- ingest(int(watermark), total) }()
	during, err := loadgen.Run(h, boot, loadCfg)
	if err != nil {
		return err
	}
	if err := <-ingestErr; err != nil {
		return err
	}
	if err := r.Close(); err != nil { // drains the remaining watermarks
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != versions {
		return fmt.Errorf("refit: %d swap events, want %d", len(events), versions)
	}
	var swaps, fits []time.Duration
	var refitPoints int64
	var fitTotal time.Duration
	for _, ev := range events {
		if ev.Err != nil {
			return fmt.Errorf("refit: version %d failed: %w", ev.Version, ev.Err)
		}
		swaps = append(swaps, ev.SwapDuration)
		fits = append(fits, ev.FitDuration)
		refitPoints += ev.Watermark
		fitTotal += ev.FitDuration
	}
	sort.Slice(swaps, func(i, j int) bool { return swaps[i] < swaps[j] })
	sort.Slice(fits, func(i, j int) bool { return fits[i] < fits[j] })
	refitThroughput := float64(refitPoints) / fitTotal.Seconds()

	// The same load against the final generation with the refitter closed:
	// the idle baseline the during-refit tail is compared to.
	idle, err := loadgen.Run(h, boot, loadCfg)
	if err != nil {
		return err
	}
	if during.Errors > 0 || idle.Errors > 0 {
		return fmt.Errorf("refit: %d during-refit and %d idle serve errors (want 0/0)",
			during.Errors, idle.Errors)
	}

	swapP50 := float64(durQuantile(swaps, 0.50).Microseconds())
	swapP99 := float64(durQuantile(swaps, 0.99).Microseconds())
	fmt.Printf("  %d versions over %d points (watermark %d), final model %d points\n",
		versions, total, watermark, int(events[len(events)-1].Watermark))
	fmt.Printf("  swap latency: p50=%.0fus p99=%.0fus   fit: p50=%.1fms p99=%.1fms   refit throughput %.0f pts/s\n",
		swapP50, swapP99,
		float64(durQuantile(fits, 0.50).Microseconds())/1e3,
		float64(durQuantile(fits, 0.99).Microseconds())/1e3,
		refitThroughput)
	fmt.Printf("  serve p99: %.0fus during refit vs %.0fus idle  (p50 %.0fus vs %.0fus, %.0f vs %.0f req/s)\n",
		during.P99MicroS, idle.P99MicroS, during.P50MicroS, idle.P50MicroS,
		during.Throughput, idle.Throughput)

	if refitOut != "" {
		out := struct {
			Watermark       int64           `json:"watermark"`
			Versions        int             `json:"versions"`
			Points          int             `json:"points"`
			SwapP50MicroS   float64         `json:"swap_p50_us"`
			SwapP99MicroS   float64         `json:"swap_p99_us"`
			FitP50MS        float64         `json:"fit_p50_ms"`
			FitP99MS        float64         `json:"fit_p99_ms"`
			RefitPointsPerS float64         `json:"refit_points_per_sec"`
			ServeDuring     *loadgen.Report `json:"serve_during_refit"`
			ServeIdle       *loadgen.Report `json:"serve_idle"`
		}{
			watermark, versions, total, swapP50, swapP99,
			float64(durQuantile(fits, 0.50).Microseconds()) / 1e3,
			float64(durQuantile(fits, 0.99).Microseconds()) / 1e3,
			refitThroughput, during, idle,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(refitOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", refitOut)
	}
	lines := []string{fmt.Sprintf("%d,%d,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f",
		watermark, versions, total, swapP50, swapP99, refitThroughput,
		during.P50MicroS, during.P99MicroS, idle.P50MicroS, idle.P99MicroS)}
	return writeCSV("refit.csv",
		"watermark,versions,points,swap_p50_us,swap_p99_us,refit_points_per_sec,during_p50_us,during_p99_us,idle_p50_us,idle_p99_us", lines)
}

// streamOut is where the stream experiment writes its JSON report (empty =
// skip).
var streamOut string

// streamExp: out-of-core ingestion benchmark — the same data set clustered
// in memory and by RunStream reading it back from disk, at growing size
// multipliers over a fixed chunk budget. Labels must be identical and the
// streamed Phase I peak heap must stay under an N-independent ceiling.
func streamExp(s harness.Scale) error {
	header("Stream: out-of-core ingestion (memory-bounded Phase I)")
	rows, err := harness.Stream(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  x%-3d n=%-9d chunk=%-7d identical=%-5v chunks=%-5d spill=%8.1fKiB reloads=%-3d peakI=%8.1fKiB ceiling=%8.1fKiB sim=%9.1fms (mem %9.1fms) wall=%7.1fms (mem %7.1fms)\n",
			r.Multiplier, r.N, r.ChunkSize, r.Identical, r.Chunks,
			float64(r.SpillBytes)/1024, r.SpillReloads,
			float64(r.PeakPhase1HeapBytes)/1024, float64(r.HeapCeilingBytes)/1024,
			r.StreamMillis, r.RunMillis, r.StreamWallMillis, r.RunWallMillis)
		if !r.Identical {
			return fmt.Errorf("stream: x%d (n=%d) diverged from the in-memory clustering", r.Multiplier, r.N)
		}
		if !r.WithinCeiling {
			return fmt.Errorf("stream: x%d (n=%d) peak Phase I heap %d exceeds ceiling %d",
				r.Multiplier, r.N, r.PeakPhase1HeapBytes, r.HeapCeilingBytes)
		}
	}
	if streamOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(streamOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", streamOut)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%d,%d,%d,%v,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f",
			r.Multiplier, r.N, r.ChunkSize, r.Identical, r.Chunks, r.SpillBytes, r.SpillReloads,
			r.PeakPhase1HeapBytes, r.HeapCeilingBytes,
			r.StreamMillis, r.RunMillis, r.StreamWallMillis, r.RunWallMillis))
	}
	return writeCSV("stream.csv",
		"multiplier,n,chunk_size,identical,chunks,spill_bytes,spill_reloads,peak_phase1_heap_bytes,heap_ceiling_bytes,stream_ms,run_ms,stream_wall_ms,run_wall_ms", lines)
}

// transportOut is where the transport experiment writes its JSON report
// (empty = skip).
var transportOut string

// transportExp: multi-process backend sweep — worker subprocesses over
// local sockets, differenced against the in-process simulator, with
// measured-vs-simulated makespan reconciliation per stage.
func transportExp(s harness.Scale) error {
	header("Transport: multi-process backend vs in-process simulator")
	rows, err := harness.Transport(s, harness.TransportConfig{})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  seed=%d w=%-2d chaos=%-5v identical=%-5v accounted=%-5v inj=%-3d cksum=%-3d kills=%-3d measured=%9.1fms simulated=%9.1fms bound-ok=%v\n",
			r.Seed, r.Workers, r.ChaosOn, r.Identical, r.Accounted,
			r.InjectedFailures, r.ChecksumRejects, r.WorkerKills,
			r.MeasuredMillis, r.SimulatedMillis, r.WithinBound)
		if !r.Identical {
			return fmt.Errorf("transport: seed=%d workers=%d chaos=%v diverged from the in-process run",
				r.Seed, r.Workers, r.ChaosOn)
		}
		if !r.Accounted {
			return fmt.Errorf("transport: seed=%d workers=%d chaos=%v fault ledger does not reconcile",
				r.Seed, r.Workers, r.ChaosOn)
		}
		if !r.WithinBound {
			return fmt.Errorf("transport: seed=%d workers=%d chaos=%v measured makespan %0.1fms diverged from simulated %0.1fms beyond the stated bound",
				r.Seed, r.Workers, r.ChaosOn, r.MeasuredMillis, r.SimulatedMillis)
		}
	}
	if transportOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(transportOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", transportOut)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%d,%d,%v,%v,%v,%d,%d,%d,%.3f,%.3f,%v",
			r.Seed, r.Workers, r.ChaosOn, r.Identical, r.Accounted,
			r.InjectedFailures, r.ChecksumRejects, r.WorkerKills,
			r.MeasuredMillis, r.SimulatedMillis, r.WithinBound))
	}
	return writeCSV("transport.csv",
		"seed,workers,chaos,identical,accounted,injected_failures,checksum_rejects,worker_kills,measured_ms,simulated_ms,within_bound", lines)
}

// registryOut is where the registry experiment writes its JSON report
// (empty = skip).
var registryOut string

// registryExp: the model registry's hot paths — durable manifest appends
// (frame + fsync + HEAD seal per publish), a full verify (chain walk plus
// re-hashing every blob), and head/version index lookups.
func registryExp(s harness.Scale) error {
	header("Registry: durable publish, full verify, index lookups")
	dir, err := os.MkdirTemp("", "rpbench-registry-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reg, err := registry.Open(dir)
	if err != nil {
		return err
	}
	defer reg.Close()

	// Distinct tiny artifacts: content-addressing makes every publish hit
	// both the blob path and the manifest path.
	publishes := 200
	if s.N < 5000 { // -quick
		publishes = 50
	}
	artifact := func(i int) ([]byte, error) {
		coords := []float64{float64(i), 0, float64(i) + 0.25, 0.1}
		m, err := serve.New(coords, 2, []int{0, 0}, []bool{true, true}, 0.5, 1, 0.01, 1)
		if err != nil {
			return nil, err
		}
		return m.Encode(), nil
	}
	var appends []time.Duration
	var parent uint64
	for i := 1; i <= publishes; i++ {
		art, err := artifact(i)
		if err != nil {
			return err
		}
		sum := registry.ArtifactHash(art)
		rec := registry.Record{
			Version: int64(i), ModelHash: sum, Parent: parent,
			Watermark: int64(i) * 64, ConfigSum: 0xbe9c4, Points: 2,
			Clusters: 1, Bytes: int64(len(art)),
		}
		// Publish + Sync per record: one frame, one fsync, one HEAD seal —
		// the per-generation durability cost an online server pays.
		start := time.Now()
		if _, err := reg.Publish(art, rec); err != nil {
			return err
		}
		if err := reg.Sync(); err != nil {
			return err
		}
		appends = append(appends, time.Since(start))
		parent = sum
	}
	sort.Slice(appends, func(i, j int) bool { return appends[i] < appends[j] })
	appendP50 := float64(durQuantile(appends, 0.50).Microseconds())
	appendP99 := float64(durQuantile(appends, 0.99).Microseconds())

	verifyStart := time.Now()
	rep, err := reg.Verify()
	if err != nil {
		return err
	}
	verifyDur := time.Since(verifyStart)
	verifyMBs := float64(rep.BlobBytes) / (1 << 20) / verifyDur.Seconds()
	verifyRecs := float64(rep.Records) / verifyDur.Seconds()

	lookups := 200_000
	lookupStart := time.Now()
	for i := 0; i < lookups; i++ {
		if _, ok := reg.Head(); !ok {
			return fmt.Errorf("registry: head vanished")
		}
		if _, ok := reg.ByVersion(int64(i%publishes) + 1); !ok {
			return fmt.Errorf("registry: version %d vanished", i%publishes+1)
		}
	}
	lookupNs := float64(time.Since(lookupStart).Nanoseconds()) / float64(lookups)

	fmt.Printf("  %d durable publishes: append p50=%.0fus p99=%.0fus\n",
		publishes, appendP50, appendP99)
	fmt.Printf("  verify: %d records, %d blobs (%d bytes) in %v  (%.1f MB/s, %.0f rec/s)\n",
		rep.Records, rep.Blobs, rep.BlobBytes, verifyDur.Round(time.Microsecond), verifyMBs, verifyRecs)
	fmt.Printf("  head+version lookup: %.0fns per pair\n", lookupNs)

	if registryOut != "" {
		out := struct {
			Publishes       int     `json:"publishes"`
			AppendP50MicroS float64 `json:"append_p50_us"`
			AppendP99MicroS float64 `json:"append_p99_us"`
			VerifyRecords   int     `json:"verify_records"`
			VerifyBlobs     int     `json:"verify_blobs"`
			VerifyBytes     int64   `json:"verify_bytes"`
			VerifyMS        float64 `json:"verify_ms"`
			VerifyMBPerSec  float64 `json:"verify_mb_per_sec"`
			VerifyRecPerSec float64 `json:"verify_records_per_sec"`
			HeadLookupNs    float64 `json:"head_lookup_ns"`
		}{
			publishes, appendP50, appendP99,
			rep.Records, rep.Blobs, rep.BlobBytes,
			float64(verifyDur.Microseconds()) / 1e3, verifyMBs, verifyRecs, lookupNs,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(registryOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", registryOut)
	}
	lines := []string{fmt.Sprintf("%d,%.0f,%.0f,%d,%d,%.3f,%.1f,%.0f",
		publishes, appendP50, appendP99, rep.Records, rep.Blobs,
		float64(verifyDur.Microseconds())/1e3, verifyMBs, lookupNs)}
	return writeCSV("registry.csv",
		"publishes,append_p50_us,append_p99_us,verify_records,verify_blobs,verify_ms,verify_mb_per_sec,head_lookup_ns", lines)
}

func fig21(s harness.Scale) error {
	header("Figure 21: elapsed-time breakdown for different data sizes")
	rows, err := harness.SizeScaling(s)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  x%-3d", r.Multiplier)
		for _, ph := range r.Order {
			fmt.Printf("  %s=%.2f", ph, r.Phases[ph])
		}
		fmt.Println()
	}
	return nil
}
