package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"rpdbscan/internal/registry"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./cmd/rpserve -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestMain lets the test binary impersonate the real CLI (same convention
// as cmd/rpdbscan): a child process spawned with RPSERVE_BE_CLI=1 runs
// main() against its own arguments.
func TestMain(m *testing.M) {
	if os.Getenv("RPSERVE_BE_CLI") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// startServer boots the real CLI on a kernel-assigned port against the
// checked-in fixture model and returns the base URL plus a stop function
// that SIGTERMs the process and asserts a clean drain (exit status 0).
func startServer(t *testing.T, extraArgs ...string) (base string, stop func()) {
	t.Helper()
	return startCLI(t, append([]string{
		"-model", filepath.Join("testdata", "two_blobs.model"),
	}, extraArgs...)...)
}

// startCLI boots the real CLI with exactly the given flags (plus a
// kernel-assigned port and JSON logs) — the online-mode tests use it to
// start without a -model.
func startCLI(t *testing.T, extraArgs ...string) (base string, stop func()) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-log-format", "json",
	}, extraArgs...)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "RPSERVE_BE_CLI=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The CLI announces its bound address in the "serving" log record.
	addrCh := make(chan string, 1)
	logs := &bytes.Buffer{}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Bytes()
			logs.Write(line)
			logs.WriteByte('\n')
			var rec struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(line, &rec) == nil && rec.Msg == "serving" {
				select {
				case addrCh <- rec.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server did not announce its address; logs:\n%s", logs.String())
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("server did not drain cleanly: %v\nlogs:\n%s", err, logs.String())
		}
	}
	t.Cleanup(stop)
	return base, stop
}

// endpointCases is every rpserve endpoint (and its principal error paths),
// each pinned to a golden transcript of status, content type, and body.
var endpointCases = []struct {
	name   string
	method string
	path   string
	body   string
}{
	{"healthz", "GET", "/healthz", ""},
	{"model_info", "GET", "/model/info", ""},
	{"predict_hit", "POST", "/predict", `{"point":[0.08,-0.02]}`},
	{"predict_noise", "POST", "/predict", `{"point":[9,9]}`},
	{"predict_bad_json", "POST", "/predict", `{"point":`},
	{"predict_dim_mismatch", "POST", "/predict", `{"point":[1,2,3]}`},
	{"predict_wrong_method", "GET", "/predict", ""},
	{"batch", "POST", "/predict/batch", `{"points":[[0.08,-0.02],[2.04,2.01],[9,9]]}`},
	{"batch_bad_point", "POST", "/predict/batch", `{"points":[[1]]}`},
	{"not_found", "GET", "/nope", ""},
}

// transcript renders one HTTP exchange in the golden format.
func transcript(method, path, reqBody string, resp *http.Response, respBody []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s\n", method, path)
	if reqBody != "" {
		fmt.Fprintf(&b, ">> %s\n", reqBody)
	}
	fmt.Fprintf(&b, "%d %s\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	keys := []string{"Content-Type", "Allow", "Retry-After"}
	sort.Strings(keys)
	for _, k := range keys {
		if v := resp.Header.Get(k); v != "" {
			fmt.Fprintf(&b, "%s: %s\n", k, v)
		}
	}
	b.WriteString(string(respBody))
	return b.String()
}

// checkGolden performs one HTTP exchange and pins its transcript to
// testdata/<name>.golden (rewriting it under -update).
func checkGolden(t *testing.T, base, name, method, path, reqBody string) {
	t.Helper()
	var req *http.Request
	var err error
	if reqBody != "" {
		req, err = http.NewRequest(method, base+path, strings.NewReader(reqBody))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequest(method, base+path, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := transcript(method, path, reqBody, resp, body)

	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("transcript diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\n(re-run with -update if intentional)",
			golden, got, want)
	}
}

// TestGoldenEndpoints boots the real rpserve binary on the checked-in
// fixture model and pins every endpoint's exact status, headers, and
// canonical JSON body. Regenerate with -update after intentional changes.
func TestGoldenEndpoints(t *testing.T) {
	base, _ := startServer(t)
	for _, tc := range endpointCases {
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, base, tc.name, tc.method, tc.path, tc.body)
		})
	}
}

// TestGoldenIngest boots the real rpserve binary in online mode (cold
// start, watermark 8, fully pinned fit parameters) and walks the ingest
// lifecycle through golden transcripts: cold-start 503, single and batch
// ingest with watermark arithmetic, the validation error paths, the first
// refit's versioned /model/info, and a post-swap prediction stamped with
// the model version. The refit itself is awaited by polling (not
// recorded); every recorded body is a pure function of the ingested
// points and flags, so the transcripts are byte-stable.
func TestGoldenIngest(t *testing.T) {
	base, _ := startCLI(t,
		"-ingest", "-refit-watermark", "8",
		"-eps", "0.5", "-minpts", "2", "-partitions", "2", "-workers", "2",
		"-seed", "1", "-model-dir", t.TempDir(),
	)

	steps := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"ingest_cold_predict", "POST", "/predict", `{"point":[1,1]}`},
		{"ingest_single", "POST", "/ingest", `{"point":[1.0,1.0]}`},
		{"ingest_batch", "POST", "/ingest", `{"points":[[1.1,1.0],[0.9,1.1],[1.0,0.9],[-1.0,-1.0],[-1.1,-0.9],[-0.9,-1.0]]}`},
		{"ingest_both_forms", "POST", "/ingest", `{"point":[1,2],"points":[[3,4]]}`},
		{"ingest_empty", "POST", "/ingest", `{}`},
		{"ingest_dim_mismatch", "POST", "/ingest", `{"points":[[1,2],[3]]}`},
		{"ingest_wrong_method", "GET", "/ingest", ""},
		// Crosses watermark 8: the reply itself is still deterministic
		// (totals and watermark arithmetic do not depend on refit timing).
		{"ingest_crosses_watermark", "POST", "/ingest", `{"points":[[6.0,6.0],[1.05,0.95]]}`},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, base, tc.name, tc.method, tc.path, tc.body)
		})
	}

	// Await generation 1 (polling is not part of any transcript), then pin
	// the versioned /model/info and a version-stamped prediction.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/model/info")
		if err != nil {
			t.Fatal(err)
		}
		var vi struct {
			Version int64 `json:"version"`
		}
		err = json.NewDecoder(resp.Body).Decode(&vi)
		resp.Body.Close()
		if err == nil && vi.Version >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("generation 1 never served")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Run("ingest_model_info", func(t *testing.T) {
		checkGolden(t, base, "ingest_model_info", "GET", "/model/info", "")
	})
	t.Run("ingest_predict_versioned", func(t *testing.T) {
		checkGolden(t, base, "ingest_predict_versioned", "POST", "/predict", `{"point":[1.02,1.01]}`)
	})
}

// awaitVersion polls /model/info until the served generation reaches v
// (polling is never part of a golden transcript).
func awaitVersion(t *testing.T, base string, v int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/model/info")
		if err != nil {
			t.Fatal(err)
		}
		var vi struct {
			Version int64 `json:"version"`
		}
		err = json.NewDecoder(resp.Body).Decode(&vi)
		resp.Body.Close()
		if err == nil && vi.Version >= v {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("generation %d never served", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ingestJSON posts one ingest body and asserts 200.
func ingestJSON(t *testing.T, base, body string) {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		reply, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest = %d %s", resp.StatusCode, reply)
	}
}

// TestGoldenRegistryLifecycle walks the registry serving modes end to end
// through the real CLI, pinned to golden transcripts. One online rpserve
// grows a registry to two generations (fixed points, fixed fit flags, so
// both artifacts are byte-deterministic) and drains; then `-rollback 1`
// serves the prior generation, `-pin` serves generation 1 by content hash,
// and `-ab` splits between both — each mode's /model/info and a
// version-stamped prediction pinned byte for byte. The rollback goldens
// prove there is no torn swap: version 1's exact checksum and watermark
// serve again after version 2 existed.
func TestGoldenRegistryLifecycle(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: grow the registry to two generations online, then drain.
	base, stop := startCLI(t,
		"-ingest", "-refit-watermark", "8",
		"-eps", "0.5", "-minpts", "2", "-partitions", "2", "-workers", "2",
		"-seed", "1", "-model-dir", dir,
	)
	ingestJSON(t, base, `{"points":[[1,1],[1.1,1],[0.9,1.1],[1,0.9],[-1,-1],[-1.1,-0.9],[-0.9,-1],[1.05,0.95]]}`)
	awaitVersion(t, base, 1)
	ingestJSON(t, base, `{"points":[[-1.05,-0.95],[1.02,1.01],[0.98,0.99],[-0.98,-1.01],[6,6],[1.0,1.05],[-1.0,-1.05],[0.95,1.0]]}`)
	awaitVersion(t, base, 2)
	stop() // SIGTERM: drains, seals the manifest, exits 0

	// Resolve both generations' content hashes from the sealed registry.
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec1, ok1 := reg.ByVersion(1)
	rec2, ok2 := reg.ByVersion(2)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if !ok1 || !ok2 {
		t.Fatalf("registry missing generations: v1=%v v2=%v", ok1, ok2)
	}
	hash1 := registry.FormatHash(rec1.ModelHash)
	hash2 := registry.FormatHash(rec2.ModelHash)

	// Phase 2: -rollback 1 serves the prior generation, frozen.
	base, stop = startCLI(t, "-model-dir", dir, "-rollback", "1")
	t.Run("rollback_model_info", func(t *testing.T) {
		checkGolden(t, base, "rollback_model_info", "GET", "/model/info", "")
	})
	t.Run("rollback_predict", func(t *testing.T) {
		checkGolden(t, base, "rollback_predict", "POST", "/predict", `{"point":[1.02,1.01]}`)
	})
	stop()

	// Phase 3: -pin addresses the same generation by content hash.
	base, stop = startCLI(t, "-model-dir", dir, "-pin", hash1)
	t.Run("pin_model_info", func(t *testing.T) {
		checkGolden(t, base, "pin_model_info", "GET", "/model/info", "")
	})
	t.Run("pin_predict", func(t *testing.T) {
		checkGolden(t, base, "pin_predict", "POST", "/predict", `{"point":[-1.02,-0.99]}`)
	})
	stop()

	// Phase 4: -ab splits between both generations; the fixed request body
	// routes deterministically, so the stamped version is golden-stable.
	base, stop = startCLI(t, "-model-dir", dir, "-ab", hash1+","+hash2+",300")
	t.Run("ab_model_info", func(t *testing.T) {
		checkGolden(t, base, "ab_model_info", "GET", "/model/info", "")
	})
	t.Run("ab_predict", func(t *testing.T) {
		checkGolden(t, base, "ab_predict", "POST", "/predict", `{"point":[0.97,1.03]}`)
	})
	stop()
}

// TestRollbackVersionZero pins the -rollback sentinel fix: version 0 is
// a legal generation (a legacy model-0-<hash>.rpm1 import produces it),
// so `-rollback 0` must resolve it through the registry and serve it —
// not degrade to the generic usage error the old ==0 "unset" sentinel
// caused.
func TestRollbackVersionZero(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	art, err := os.ReadFile(filepath.Join("testdata", "two_blobs.model"))
	if err != nil {
		t.Fatal(err)
	}
	sum := registry.ArtifactHash(art)
	if _, err := reg.Publish(art, registry.Record{Version: 0, ModelHash: sum}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	base, stop := startCLI(t, "-model-dir", dir, "-rollback", "0")
	resp, err := http.Get(base + "/model/info")
	if err != nil {
		t.Fatal(err)
	}
	var vi struct {
		Version  int64  `json:"version"`
		Checksum string `json:"checksum"`
	}
	err = json.NewDecoder(resp.Body).Decode(&vi)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if vi.Version != 0 || vi.Checksum != registry.FormatHash(sum) {
		t.Fatalf("served version %d checksum %s, want version 0 checksum %s",
			vi.Version, vi.Checksum, registry.FormatHash(sum))
	}
	stop()
}

// TestRollbackRejectsNegativeVersion: anything below the -1 sentinel is
// an explicit operator error with a specific message, not silent "unset".
func TestRollbackRejectsNegativeVersion(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-model-dir", t.TempDir(), "-rollback", "-5", "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "RPSERVE_BE_CLI=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("rpserve accepted -rollback -5:\n%s", out)
	}
	if !bytes.Contains(out, []byte("-rollback wants a version >= 0")) {
		t.Fatalf("expected the specific -rollback error, got:\n%s", out)
	}
}

// TestGracefulSIGTERM pins the drain contract at the process level: a
// serving rpserve receiving SIGTERM exits with status 0, and its listener
// refuses connections afterwards.
func TestGracefulSIGTERM(t *testing.T) {
	base, stop := startServer(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	stop() // SIGTERM + assert exit 0
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after SIGTERM drain")
	}
}

// TestRejectsCorruptModel pins the checksum gate at the CLI level: a
// single flipped byte in the artifact must abort startup with a non-zero
// exit.
func TestRejectsCorruptModel(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "two_blobs.model"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	corrupt := filepath.Join(t.TempDir(), "corrupt.model")
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-model", corrupt, "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "RPSERVE_BE_CLI=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("rpserve accepted a corrupt model:\n%s", out)
	}
	if !bytes.Contains(out, []byte("checksum")) {
		t.Fatalf("expected a checksum error, got:\n%s", out)
	}
}
