// Command rpserve serves predictions from a fitted RP-DBSCAN model
// artifact (written by `rpdbscan -save-model`) over HTTP, and — with
// -ingest — runs the full online loop: accept points, refit at exact
// point-count watermarks, and hot-swap the served model atomically.
//
// Usage:
//
//	rpserve -model model.rpm [flags]                        # frozen model
//	rpserve -ingest -eps E -minpts M [-model-dir D] [flags] # online
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text exposition (counters + histograms)
//	GET  /model/info     model parameters, artifact identity, and served
//	                     version / watermark / parent hash
//	POST /predict        {"point":[...]} -> {"label":..,"model_version":..}
//	POST /predict/batch  {"points":[[...],...]} -> {"predictions":[...],...}
//	POST /ingest         {"point":[...]} or {"points":[[...],...]} -> append
//	                     to the online buffer (-ingest mode only)
//
// /metrics bypasses the admission queue, so scrapes keep answering while
// prediction traffic is being shed.
//
// Online mode: every -refit-watermark ingested points, the server refits
// the entire ingested prefix with the out-of-core pipeline and atomically
// swaps the served model. Versioned, checksummed artifacts land in
// -model-dir as model-<version>-<hash>.rpm1; on boot the newest valid one
// serves immediately (corrupt files are skipped). A -buffer-dir makes the
// ingested stream itself durable across restarts. Cold start (no artifact,
// no -model) answers 503 on prediction endpoints until the first watermark.
//
// The server shares one immutable model snapshot across all connections,
// admits at most -max-inflight requests at once (sheds the rest with 429),
// caps request bodies at -max-body bytes, and drains gracefully on
// SIGTERM / SIGINT: the listener closes, in-flight requests complete,
// pending refits finish, then the process exits.
//
// Flags:
//
//	-model           model artifact path (required unless -ingest)
//	-addr            listen address (default :8399)
//	-timeout         per-request read/write timeout (default 10s)
//	-max-body        request body cap in bytes (default 1 MiB)
//	-max-inflight    bounded admission queue depth (default 256)
//	-max-batch       points per /predict/batch or /ingest cap (default 4096)
//	-drain           graceful shutdown budget (default 10s)
//	-ingest          enable /ingest + micro-batch refit + hot swap
//	-refit-watermark refit cadence in ingested points (default 4096)
//	-model-dir       versioned artifact directory (boot from newest valid)
//	-buffer-dir      durable ingest-buffer directory
//	-eps -minpts     fit parameters (required with -ingest)
//	-rho -partitions -seed -chunk-size -workers
//	                 further fit parameters, as in rpdbscan
//	-log-level       debug|info|warn|error structured log level (stderr)
//	-log-format      text|json structured log encoding
//	-debug-addr      serve /metrics, /healthz, /debug/pprof, /debug/vars on
//	                 this address (separate from the serving mux)
//	-chaos-fail      probability of an injected handler fault (chaos testing)
//	-chaos-seed      seed for the injected fault schedule
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/serve"
)

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	modelPath := flag.String("model", "", "model artifact path (required)")
	addr := flag.String("addr", ":8399", "listen address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request read/write timeout")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	maxInflight := flag.Int("max-inflight", 256, "bounded admission queue depth (429 beyond it)")
	maxBatch := flag.Int("max-batch", 4096, "points per /predict/batch request")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/vars on this address")
	ingest := flag.Bool("ingest", false, "enable /ingest + micro-batch refit + atomic hot swap")
	watermark := flag.Int64("refit-watermark", 4096, "refit cadence in ingested points (-ingest)")
	modelDir := flag.String("model-dir", "", "versioned artifact directory; boot from its newest valid model (-ingest)")
	bufferDir := flag.String("buffer-dir", "", "durable ingest-buffer directory (-ingest)")
	eps := flag.Float64("eps", 0, "DBSCAN radius (required with -ingest)")
	minPts := flag.Int("minpts", 0, "DBSCAN core threshold (required with -ingest)")
	rho := flag.Float64("rho", 0.01, "approximation rate (-ingest)")
	partitions := flag.Int("partitions", 0, "number of splits per refit (default workers) (-ingest)")
	workers := flag.Int("workers", 0, "virtual workers per refit (default GOMAXPROCS) (-ingest)")
	seed := flag.Int64("seed", 1, "partitioning seed (-ingest)")
	chunkSize := flag.Int("chunk-size", 0, "points per refit chunk (default 65536) (-ingest)")
	chaosFail := flag.Float64("chaos-fail", 0, "chaos: probability of an injected handler fault")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault-schedule seed")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpserve", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpserve")
	if (*modelPath == "" && !*ingest) || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *ingest && (*eps <= 0 || *minPts < 1) {
		log.Error("-ingest requires -eps > 0 and -minpts >= 1")
		os.Exit(2)
	}
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, log); err != nil {
			fatal(log, "debug server", err)
		}
	}

	// Boot model resolution: the newest valid versioned artifact wins,
	// then an explicit -model artifact, then (online mode only) a cold
	// start that 503s until the first watermark.
	var boot *serve.Model
	var bootVersion int64
	if *ingest && *modelDir != "" {
		if err := os.MkdirAll(*modelDir, 0o755); err != nil {
			fatal(log, "model dir", err)
		}
		m, v, err := serve.LoadNewest(*modelDir)
		if err != nil {
			fatal(log, "scan model dir", err)
		}
		if m != nil {
			boot, bootVersion = m, v
			log.Info("model loaded", "dir", *modelDir, "version", v,
				"checksum", m.Info().Checksum, "points", m.Len())
		}
	}
	if boot == nil && *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(log, "open model", err)
		}
		m, err := serve.Load(f)
		f.Close()
		if err != nil {
			fatal(log, "load model", err)
		}
		boot = m
		info := m.Info()
		log.Info("model loaded", "path", *modelPath, "points", info.Points,
			"core_points", info.CorePoints, "clusters", info.Clusters,
			"dim", info.Dim, "eps", info.Eps, "min_pts", info.MinPts,
			"checksum", info.Checksum)
	}

	cfg := serve.ServerConfig{
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInflight,
		MaxBatch:       *maxBatch,
		RequestTimeout: *timeout,
		Log:            log,
	}
	if *chaosFail > 0 {
		inj, err := chaos.New(chaos.Config{Seed: *chaosSeed, FailProb: *chaosFail})
		if err != nil {
			fatal(log, "chaos config", err)
		}
		cfg.Injector = inj
		log.Info("chaos enabled", "seed", *chaosSeed, "fail", *chaosFail)
	}

	var refitter *serve.Refitter
	var srvModel *serve.Model
	if *ingest {
		refitter, err = serve.NewRefitter(serve.RefitConfig{
			Watermark:   *watermark,
			ModelDir:    *modelDir,
			BufferDir:   *bufferDir,
			Eps:         *eps,
			MinPts:      *minPts,
			Rho:         *rho,
			Partitions:  *partitions,
			Workers:     *workers,
			Seed:        *seed,
			ChunkSize:   *chunkSize,
			Boot:        boot,
			BootVersion: bootVersion,
			Log:         log,
		})
		if err != nil {
			fatal(log, "refitter", err)
		}
		cfg.Refitter = refitter
		log.Info("online mode", "watermark", *watermark,
			"model_dir", *modelDir, "buffer_dir", *bufferDir,
			"eps", *eps, "min_pts", *minPts)
	} else {
		srvModel = boot
	}
	// Install the signal handler before announcing the address: a SIGTERM
	// arriving between "serving" and handler registration would kill the
	// process instead of draining it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srv := serve.NewServer(srvModel, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(log, "listen", err)
	}
	log.Info("serving", "addr", bound.String())
	<-ctx.Done()
	stop()
	log.Info("draining", "budget", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(log, "drain", err)
	}
	if refitter != nil {
		if err := refitter.Close(); err != nil {
			fatal(log, "close refitter", err)
		}
	}
	log.Info("stopped")
}
