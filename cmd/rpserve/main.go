// Command rpserve serves predictions from a fitted RP-DBSCAN model
// artifact (written by `rpdbscan -save-model`) over HTTP.
//
// Usage:
//
//	rpserve -model model.rpm [flags]
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text exposition (counters + histograms)
//	GET  /model/info     model parameters and artifact identity
//	POST /predict        {"point":[...]} -> {"label":..,"noise":..,...}
//	POST /predict/batch  {"points":[[...],...]} -> {"predictions":[...],...}
//
// /metrics bypasses the admission queue, so scrapes keep answering while
// prediction traffic is being shed.
//
// The server shares one immutable model across all connections, admits at
// most -max-inflight requests at once (sheds the rest with 429), caps
// request bodies at -max-body bytes, and drains gracefully on SIGTERM /
// SIGINT: the listener closes, in-flight requests complete, then the
// process exits.
//
// Flags:
//
//	-model        model artifact path (required)
//	-addr         listen address (default :8399)
//	-timeout      per-request read/write timeout (default 10s)
//	-max-body     request body cap in bytes (default 1 MiB)
//	-max-inflight bounded admission queue depth (default 256)
//	-max-batch    points per /predict/batch cap (default 4096)
//	-drain        graceful shutdown budget (default 10s)
//	-log-level    debug|info|warn|error structured log level (stderr)
//	-log-format   text|json structured log encoding
//	-debug-addr   serve /metrics, /healthz, /debug/pprof, /debug/vars on
//	              this address (separate from the serving mux)
//	-chaos-fail   probability of an injected handler fault (chaos testing)
//	-chaos-seed   seed for the injected fault schedule
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/serve"
)

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	modelPath := flag.String("model", "", "model artifact path (required)")
	addr := flag.String("addr", ":8399", "listen address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request read/write timeout")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	maxInflight := flag.Int("max-inflight", 256, "bounded admission queue depth (429 beyond it)")
	maxBatch := flag.Int("max-batch", 4096, "points per /predict/batch request")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/vars on this address")
	chaosFail := flag.Float64("chaos-fail", 0, "chaos: probability of an injected handler fault")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault-schedule seed")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpserve", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpserve")
	if *modelPath == "" || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, log); err != nil {
			fatal(log, "debug server", err)
		}
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(log, "open model", err)
	}
	model, err := serve.Load(f)
	f.Close()
	if err != nil {
		fatal(log, "load model", err)
	}
	info := model.Info()
	log.Info("model loaded", "path", *modelPath, "points", info.Points,
		"core_points", info.CorePoints, "clusters", info.Clusters,
		"dim", info.Dim, "eps", info.Eps, "min_pts", info.MinPts,
		"checksum", info.Checksum)

	cfg := serve.ServerConfig{
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInflight,
		MaxBatch:       *maxBatch,
		RequestTimeout: *timeout,
		Log:            log,
	}
	if *chaosFail > 0 {
		inj, err := chaos.New(chaos.Config{Seed: *chaosSeed, FailProb: *chaosFail})
		if err != nil {
			fatal(log, "chaos config", err)
		}
		cfg.Injector = inj
		log.Info("chaos enabled", "seed", *chaosSeed, "fail", *chaosFail)
	}
	// Install the signal handler before announcing the address: a SIGTERM
	// arriving between "serving" and handler registration would kill the
	// process instead of draining it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srv := serve.NewServer(model, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(log, "listen", err)
	}
	log.Info("serving", "addr", bound.String())
	<-ctx.Done()
	stop()
	log.Info("draining", "budget", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(log, "drain", err)
	}
	log.Info("stopped")
}
