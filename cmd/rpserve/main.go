// Command rpserve serves predictions from a fitted RP-DBSCAN model
// artifact (written by `rpdbscan -save-model`) over HTTP, and — with
// -ingest — runs the full online loop: accept points, refit at exact
// point-count watermarks, and hot-swap the served model atomically.
//
// Usage:
//
//	rpserve -model model.rpm [flags]                        # frozen model
//	rpserve -ingest -eps E -minpts M [-model-dir D] [flags] # online
//	rpserve -model-dir D -pin fnv1a:HASH [flags]            # pin a generation
//	rpserve -model-dir D -rollback V [flags]                # serve version V
//	rpserve -model-dir D -ab HASHA,HASHB,SPLIT [flags]      # A/B split
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text exposition (counters + histograms)
//	GET  /model/info     model parameters, artifact identity, and served
//	                     version / watermark / parent hash
//	POST /predict        {"point":[...]} -> {"label":..,"model_version":..}
//	POST /predict/batch  {"points":[[...],...]} -> {"predictions":[...],...}
//	POST /ingest         {"point":[...]} or {"points":[[...],...]} -> append
//	                     to the online buffer (-ingest mode only)
//
// /metrics bypasses the admission queue, so scrapes keep answering while
// prediction traffic is being shed.
//
// Online mode: every -refit-watermark ingested points, the server refits
// the entire ingested prefix with the out-of-core pipeline and atomically
// swaps the served model. Each swap publishes through the content-addressed
// model registry rooted at -model-dir: the artifact lands in
// blobs/<hash>.rpm1 and a fit record is appended to the tamper-evident
// manifest. On boot the registry head serves immediately (a corrupt
// registry aborts startup — use `rpmodel verify` to diagnose). A
// -buffer-dir makes the ingested stream itself durable across restarts.
// Cold start (no head, no -model) answers 503 on prediction endpoints
// until the first watermark.
//
// Registry serving modes (all frozen, mutually exclusive with -ingest and
// -model, all requiring -model-dir):
//
//	-pin fnv1a:HASH    serve exactly the generation with that content hash
//	-rollback V        serve the generation recorded at version V
//	-ab A,B,SPLIT      split traffic between two generations by request
//	                   hash: SPLIT of every 1000 request bodies go to hash
//	                   A, the rest to hash B; batches route as one unit
//
// The server shares one immutable model snapshot across all connections,
// admits at most -max-inflight requests at once (sheds the rest with 429),
// caps request bodies at -max-body bytes, and drains gracefully on
// SIGTERM / SIGINT: the listener closes, in-flight requests complete,
// pending refits finish, then the process exits.
//
// Flags:
//
//	-model           model artifact path (required unless -ingest)
//	-addr            listen address (default :8399)
//	-timeout         per-request read/write timeout (default 10s)
//	-max-body        request body cap in bytes (default 1 MiB)
//	-max-inflight    bounded admission queue depth (default 256)
//	-max-batch       points per /predict/batch or /ingest cap (default 4096)
//	-drain           graceful shutdown budget (default 10s)
//	-ingest          enable /ingest + micro-batch refit + hot swap
//	-refit-watermark refit cadence in ingested points (default 4096)
//	-model-dir       model registry root (boot from head; publish on swap)
//	-pin             serve one registry generation by content hash (frozen)
//	-rollback        serve one registry generation by version (frozen)
//	-ab              hashA,hashB,split — registry A/B split (frozen)
//	-buffer-dir      durable ingest-buffer directory
//	-eps -minpts     fit parameters (required with -ingest)
//	-rho -partitions -seed -chunk-size -workers
//	                 further fit parameters, as in rpdbscan
//	-log-level       debug|info|warn|error structured log level (stderr)
//	-log-format      text|json structured log encoding
//	-debug-addr      serve /metrics, /healthz, /debug/pprof, /debug/vars on
//	                 this address (separate from the serving mux)
//	-chaos-fail      probability of an injected handler fault (chaos testing)
//	-chaos-seed      seed for the injected fault schedule
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rpdbscan/internal/chaos"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/registry"
	"rpdbscan/internal/serve"
)

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}

// loadSnapshot resolves one manifest record to a served snapshot: blob
// fetched by content hash (verified against both checksums on read) and
// decoded, with the record's version / watermark / parent carried along.
func loadSnapshot(reg *registry.Registry, rec registry.Record) (*serve.Snapshot, error) {
	blob, err := reg.Blob(rec.ModelHash)
	if err != nil {
		return nil, err
	}
	m, err := serve.Decode(blob)
	if err != nil {
		return nil, err
	}
	parent := ""
	if rec.Parent != 0 {
		parent = registry.FormatHash(rec.Parent)
	}
	return &serve.Snapshot{Model: m, Version: rec.Version, Watermark: rec.Watermark, ParentHash: parent}, nil
}

// snapshotByHash resolves a -pin / -ab operand ("fnv1a:HEX" or bare hex)
// through the registry index.
func snapshotByHash(reg *registry.Registry, ref string) (*serve.Snapshot, error) {
	sum, err := registry.ParseHash(ref)
	if err != nil {
		return nil, err
	}
	rec, ok := reg.ByHash(sum)
	if !ok {
		return nil, fmt.Errorf("no manifest record for hash %s", registry.FormatHash(sum))
	}
	return loadSnapshot(reg, rec)
}

// parseABSpec splits the -ab operand "hashA,hashB,split" and resolves both
// arms; split is the per-mille share of requests routed to arm A.
func parseABSpec(reg *registry.Registry, spec string) (*serve.ABConfig, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-ab wants hashA,hashB,split, got %q", spec)
	}
	split, err := strconv.Atoi(parts[2])
	if err != nil || split < 0 || split > 1000 {
		return nil, fmt.Errorf("-ab split must be an integer in [0,1000], got %q", parts[2])
	}
	a, err := snapshotByHash(reg, parts[0])
	if err != nil {
		return nil, fmt.Errorf("arm A: %w", err)
	}
	b, err := snapshotByHash(reg, parts[1])
	if err != nil {
		return nil, fmt.Errorf("arm B: %w", err)
	}
	return &serve.ABConfig{A: a, B: b, SplitMilli: split}, nil
}

func main() {
	modelPath := flag.String("model", "", "model artifact path (required)")
	addr := flag.String("addr", ":8399", "listen address")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request read/write timeout")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	maxInflight := flag.Int("max-inflight", 256, "bounded admission queue depth (429 beyond it)")
	maxBatch := flag.Int("max-batch", 4096, "points per /predict/batch request")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/vars on this address")
	ingest := flag.Bool("ingest", false, "enable /ingest + micro-batch refit + atomic hot swap")
	watermark := flag.Int64("refit-watermark", 4096, "refit cadence in ingested points (-ingest)")
	modelDir := flag.String("model-dir", "", "model registry root; boot from its head (-ingest) or serve from it (-pin/-rollback/-ab)")
	pin := flag.String("pin", "", "serve the registry generation with this content hash, frozen (requires -model-dir)")
	rollback := flag.Int64("rollback", -1, "serve the registry generation recorded at this version (>= 0), frozen (requires -model-dir)")
	abSpec := flag.String("ab", "", "hashA,hashB,split — frozen A/B split between two registry generations (requires -model-dir)")
	bufferDir := flag.String("buffer-dir", "", "durable ingest-buffer directory (-ingest)")
	eps := flag.Float64("eps", 0, "DBSCAN radius (required with -ingest)")
	minPts := flag.Int("minpts", 0, "DBSCAN core threshold (required with -ingest)")
	rho := flag.Float64("rho", 0.01, "approximation rate (-ingest)")
	partitions := flag.Int("partitions", 0, "number of splits per refit (default workers) (-ingest)")
	workers := flag.Int("workers", 0, "virtual workers per refit (default GOMAXPROCS) (-ingest)")
	seed := flag.Int64("seed", 1, "partitioning seed (-ingest)")
	chunkSize := flag.Int("chunk-size", 0, "points per refit chunk (default 65536) (-ingest)")
	chaosFail := flag.Float64("chaos-fail", 0, "chaos: probability of an injected handler fault")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault-schedule seed")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpserve", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpserve")
	// -1 is the unset sentinel for -rollback; version numbers start at 0
	// (a legacy model-0-<hash>.rpm1 import is a legal generation), so any
	// other negative value is an explicit operator error, not "unset".
	if *rollback < -1 {
		log.Error("-rollback wants a version >= 0", "version", *rollback)
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*modelPath != "", *ingest, *pin != "", *rollback >= 0, *abSpec != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 || flag.NArg() != 0 {
		if modes > 1 {
			log.Error("-model, -ingest, -pin, -rollback and -ab are mutually exclusive")
		}
		flag.Usage()
		os.Exit(2)
	}
	registryMode := *pin != "" || *rollback >= 0 || *abSpec != ""
	if registryMode && *modelDir == "" {
		log.Error("-pin, -rollback and -ab require -model-dir")
		os.Exit(2)
	}
	if *ingest && (*eps <= 0 || *minPts < 1) {
		log.Error("-ingest requires -eps > 0 and -minpts >= 1")
		os.Exit(2)
	}
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, log); err != nil {
			fatal(log, "debug server", err)
		}
	}

	// Boot model resolution. Online mode boots from the registry head;
	// -pin / -rollback / -ab resolve their generations through the
	// registry index; -model loads one artifact file. Cold start (online,
	// empty registry) 503s until the first watermark.
	var boot *serve.Model
	var bootVersion int64
	var bootParent string
	var reg *registry.Registry // online publish target; closed after drain
	var static *serve.Snapshot
	var ab *serve.ABConfig
	if *modelDir != "" && (*ingest || registryMode) {
		r, err := registry.Open(*modelDir)
		if err != nil {
			fatal(log, "open model registry", err)
		}
		reg = r
		switch {
		case *pin != "":
			if static, err = snapshotByHash(reg, *pin); err != nil {
				fatal(log, "pin", err)
			}
			log.Info("model pinned", "dir", *modelDir, "version", static.Version,
				"checksum", static.Model.Info().Checksum, "watermark", static.Watermark)
		case *rollback >= 0:
			rec, ok := reg.ByVersion(*rollback)
			if !ok {
				fatal(log, "rollback", fmt.Errorf("no manifest record for version %d", *rollback))
			}
			if static, err = loadSnapshot(reg, rec); err != nil {
				fatal(log, "rollback", err)
			}
			log.Info("model rolled back", "dir", *modelDir, "version", static.Version,
				"checksum", static.Model.Info().Checksum, "watermark", static.Watermark)
		case *abSpec != "":
			if ab, err = parseABSpec(reg, *abSpec); err != nil {
				fatal(log, "ab", err)
			}
			log.Info("ab split", "dir", *modelDir, "split_milli", ab.SplitMilli,
				"version_a", ab.A.Version, "checksum_a", ab.A.Model.Info().Checksum,
				"version_b", ab.B.Version, "checksum_b", ab.B.Model.Info().Checksum)
		default: // -ingest: the head (if any) serves until the next swap
			if head, ok := reg.Head(); ok {
				snap, err := loadSnapshot(reg, head)
				if err != nil {
					fatal(log, "load registry head", err)
				}
				boot, bootVersion, bootParent = snap.Model, snap.Version, snap.ParentHash
				log.Info("model loaded", "dir", *modelDir, "version", snap.Version,
					"checksum", snap.Model.Info().Checksum, "points", snap.Model.Len())
			}
		}
		if registryMode {
			// Frozen modes decode their generations into memory up front;
			// the registry handle has nothing further to do.
			if err := reg.Close(); err != nil {
				fatal(log, "close registry", err)
			}
			reg = nil
		}
	}
	if boot == nil && *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(log, "open model", err)
		}
		m, err := serve.Load(f)
		f.Close()
		if err != nil {
			fatal(log, "load model", err)
		}
		boot = m
		info := m.Info()
		log.Info("model loaded", "path", *modelPath, "points", info.Points,
			"core_points", info.CorePoints, "clusters", info.Clusters,
			"dim", info.Dim, "eps", info.Eps, "min_pts", info.MinPts,
			"checksum", info.Checksum)
	}

	cfg := serve.ServerConfig{
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInflight,
		MaxBatch:       *maxBatch,
		RequestTimeout: *timeout,
		Static:         static,
		AB:             ab,
		Log:            log,
	}
	if *chaosFail > 0 {
		inj, err := chaos.New(chaos.Config{Seed: *chaosSeed, FailProb: *chaosFail})
		if err != nil {
			fatal(log, "chaos config", err)
		}
		cfg.Injector = inj
		log.Info("chaos enabled", "seed", *chaosSeed, "fail", *chaosFail)
	}

	var refitter *serve.Refitter
	var srvModel *serve.Model
	if *ingest {
		refitter, err = serve.NewRefitter(serve.RefitConfig{
			Watermark:      *watermark,
			Registry:       reg,
			BufferDir:      *bufferDir,
			Eps:            *eps,
			MinPts:         *minPts,
			Rho:            *rho,
			Partitions:     *partitions,
			Workers:        *workers,
			Seed:           *seed,
			ChunkSize:      *chunkSize,
			Boot:           boot,
			BootVersion:    bootVersion,
			BootParentHash: bootParent,
			Log:            log,
		})
		if err != nil {
			fatal(log, "refitter", err)
		}
		cfg.Refitter = refitter
		log.Info("online mode", "watermark", *watermark,
			"model_dir", *modelDir, "buffer_dir", *bufferDir,
			"eps", *eps, "min_pts", *minPts)
	} else {
		srvModel = boot
	}
	// Install the signal handler before announcing the address: a SIGTERM
	// arriving between "serving" and handler registration would kill the
	// process instead of draining it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srv := serve.NewServer(srvModel, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(log, "listen", err)
	}
	log.Info("serving", "addr", bound.String())
	<-ctx.Done()
	stop()
	log.Info("draining", "budget", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(log, "drain", err)
	}
	if refitter != nil {
		if err := refitter.Close(); err != nil {
			fatal(log, "close refitter", err)
		}
	}
	if reg != nil {
		if err := reg.Close(); err != nil {
			fatal(log, "close registry", err)
		}
	}
	log.Info("stopped")
}
