// Command rpmodel inspects and maintains a content-addressed model
// registry (the directory rpserve publishes into: blobs/<hash>.rpm1 plus
// a tamper-evident manifest of fit records).
//
// Usage:
//
//	rpmodel -dir DIR list           ledger in fit order, one line per record
//	rpmodel -dir DIR show REF       one record in full; REF is a version
//	                                number, a content hash (fnv1a:HEX or
//	                                bare hex), a tag, or the word "head"
//	rpmodel -dir DIR verify         full audit: chain walk over the
//	                                manifest + HEAD seal, every blob
//	                                re-hashed against its address
//	rpmodel -dir DIR gc             remove unreferenced blobs, temp debris,
//	                                and superseded legacy artifacts; do NOT
//	                                run against a registry a live rpserve
//	                                is publishing into (files younger than
//	                                the grace window are skipped as a
//	                                safety margin, not a guarantee)
//
// Exit status: 0 on success, 1 when the registry is damaged or a REF does
// not resolve, 2 on usage errors. All diagnostics go to stderr; command
// output goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"

	"rpdbscan/internal/registry"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rpmodel -dir DIR {list | show REF | verify | gc}")
	flag.PrintDefaults()
}

func main() {
	dir := flag.String("dir", "", "model registry root (required)")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	code, err := run(*dir, cmd, rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpmodel:", err)
	}
	os.Exit(code)
}

func run(dir, cmd string, rest []string) (int, error) {
	switch cmd {
	case "list", "show", "verify", "gc":
	default:
		usage()
		return 2, nil
	}
	if (cmd == "show") != (len(rest) == 1) || (cmd != "show" && len(rest) != 0) {
		usage()
		return 2, nil
	}
	reg, err := registry.Open(dir)
	if err != nil {
		return 1, err
	}
	defer reg.Close()
	switch cmd {
	case "list":
		err = list(reg)
	case "show":
		err = show(reg, rest[0])
	case "verify":
		err = verify(reg)
	case "gc":
		err = gc(reg)
	}
	if err != nil {
		return 1, err
	}
	if err := reg.Close(); err != nil {
		return 1, err
	}
	return 0, nil
}

// orDash renders a zero hash (no parent) as "-".
func orDash(h uint64) string {
	if h == 0 {
		return "-"
	}
	return registry.FormatHash(h)
}

// list prints the ledger in fit order, head last — the same order the
// manifest records were sealed in.
func list(reg *registry.Registry) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "VERSION\tHASH\tPARENT\tWATERMARK\tPOINTS\tCLUSTERS\tBYTES\tTAG")
	for _, rec := range reg.Records() {
		tag := rec.Tag
		if tag == "" {
			tag = "-"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			rec.Version, registry.FormatHash(rec.ModelHash), orDash(rec.Parent),
			rec.Watermark, rec.Points, rec.Clusters, rec.Bytes, tag)
	}
	return w.Flush()
}

// resolve maps a user REF to a manifest record: "head", a decimal version,
// a content hash, or a tag — tried in that order.
func resolve(reg *registry.Registry, ref string) (registry.Record, error) {
	if ref == "head" {
		if rec, ok := reg.Head(); ok {
			return rec, nil
		}
		return registry.Record{}, fmt.Errorf("registry is empty")
	}
	if v, err := strconv.ParseInt(ref, 10, 64); err == nil {
		if rec, ok := reg.ByVersion(v); ok {
			return rec, nil
		}
		return registry.Record{}, fmt.Errorf("no record for version %d", v)
	}
	if sum, err := registry.ParseHash(ref); err == nil {
		if rec, ok := reg.ByHash(sum); ok {
			return rec, nil
		}
		return registry.Record{}, fmt.Errorf("no record for hash %s", registry.FormatHash(sum))
	}
	if rec, ok := reg.ByTag(ref); ok {
		return rec, nil
	}
	return registry.Record{}, fmt.Errorf("%q is not a version, hash, tag, or \"head\" in this registry", ref)
}

func show(reg *registry.Registry, ref string) error {
	rec, err := resolve(reg, ref)
	if err != nil {
		return err
	}
	tag := rec.Tag
	if tag == "" {
		tag = "-"
	}
	fmt.Printf("version:    %d\n", rec.Version)
	fmt.Printf("hash:       %s\n", registry.FormatHash(rec.ModelHash))
	fmt.Printf("parent:     %s\n", orDash(rec.Parent))
	fmt.Printf("tag:        %s\n", tag)
	fmt.Printf("watermark:  %d\n", rec.Watermark)
	fmt.Printf("points:     %d\n", rec.Points)
	fmt.Printf("clusters:   %d\n", rec.Clusters)
	fmt.Printf("bytes:      %d\n", rec.Bytes)
	fmt.Printf("config_sum: %016x\n", rec.ConfigSum)
	fmt.Printf("fit_ns:     %d\n", rec.FitNs)
	fmt.Printf("blob:       %s\n", reg.BlobPath(rec.ModelHash))
	return nil
}

func verify(reg *registry.Registry) error {
	rep, err := reg.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("verified %d records, %d blobs (%d bytes)\n", rep.Records, rep.Blobs, rep.BlobBytes)
	if rep.ExternalParents > 0 {
		fmt.Printf("external parents: %d (boot models fitted outside this registry)\n", rep.ExternalParents)
	}
	fmt.Println("OK")
	return nil
}

func gc(reg *registry.Registry) error {
	removed, err := reg.GC()
	if err != nil {
		return err
	}
	for _, rel := range removed {
		fmt.Println("removed", rel)
	}
	fmt.Printf("removed %d file(s)\n", len(removed))
	return nil
}
