package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rpdbscan"
	"rpdbscan/internal/registry"
	"rpdbscan/internal/serve"
)

// update regenerates the fixture registry AND the golden transcripts:
//
//	go test ./cmd/rpmodel -update
var update = flag.Bool("update", false, "rewrite the fixture registry and golden files")

// TestMain lets the test binary impersonate the real CLI (same convention
// as cmd/rpdbscan and cmd/rpserve).
func TestMain(m *testing.M) {
	if os.Getenv("RPMODEL_BE_CLI") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI invokes the CLI (this test binary re-executed) with args and
// returns stdout, stderr, and the exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr []byte, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "RPMODEL_BE_CLI=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	if exitErr, ok := err.(*exec.ExitError); ok {
		return out.Bytes(), errb.Bytes(), exitErr.ExitCode()
	}
	if err != nil {
		t.Fatalf("cli %v: %v", args, err)
	}
	return out.Bytes(), errb.Bytes(), 0
}

const fixtureDir = "testdata/registry"

// fixtureCoords is two well-separated blobs; prefixes of it are the three
// fixture generations' training sets.
var fixtureCoords = []float64{
	1, 1, 1.1, 1, 0.9, 1.1, 1, 0.9, -1, -1, -1.1, -0.9, -0.9, -1, 1.05, 0.95, // 8 points
	-1.05, -0.95, 1.02, 1.01, 0.98, 0.99, -0.98, -1.01, // 12
	6, 6, 1.0, 1.05, -1.0, -1.05, 0.95, 1.0, // 16
}

// fitArtifact fits the first n fixture points through the public streaming
// API with fully pinned parameters and returns the artifact bytes —
// byte-deterministic, so the fixture registry regenerates identically.
func fitArtifact(t *testing.T, n int) []byte {
	t.Helper()
	coords := append([]float64(nil), fixtureCoords[:2*n]...)
	src, err := rpdbscan.SliceSource(coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := rpdbscan.Options{Eps: 0.5, MinPts: 2, Rho: 0.01, Partitions: 2, Workers: 2, Seed: 1}
	res, err := rpdbscan.ClusterStream(src, rpdbscan.StreamOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.ModelFlat(coords, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rebuildFixture regenerates testdata/registry from scratch: three
// generations over growing prefixes, a parent chain, a tagged release, and
// fixed fit durations (wall time must never leak into a fixture).
func rebuildFixture(t *testing.T) {
	t.Helper()
	if err := os.RemoveAll(fixtureDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(fixtureDir, 0o755); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	var parent uint64
	for i, gen := range []struct {
		n   int
		tag string
	}{{8, ""}, {12, ""}, {16, "release"}} {
		art := fitArtifact(t, gen.n)
		m, err := serve.Decode(art)
		if err != nil {
			t.Fatal(err)
		}
		sum := registry.ArtifactHash(art)
		if _, err := reg.Publish(art, registry.Record{
			Version:   int64(i + 1),
			ModelHash: sum,
			Parent:    parent,
			Watermark: int64(gen.n),
			ConfigSum: 0xfeedbead,
			Points:    int64(m.Len()),
			Clusters:  int64(m.Info().Clusters),
			Bytes:     int64(len(art)),
			FitNs:     int64(i+1) * 1_500_000,
			Tag:       gen.tag,
		}); err != nil {
			t.Fatal(err)
		}
		parent = sum
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("rebuilt %s", fixtureDir)
}

// checkGolden pins one CLI invocation's stdout (exit 0 required) to
// testdata/<name>.golden.
func checkGolden(t *testing.T, name string, args ...string) {
	t.Helper()
	out, errb, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("rpmodel %v exited %d\nstderr:\n%s", args, code, errb)
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("transcript diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\n(re-run with -update if intentional)",
			golden, out, want)
	}
}

// TestGoldenTranscripts pins list / show / verify on the checked-in
// fixture registry, byte for byte.
func TestGoldenTranscripts(t *testing.T) {
	if *update {
		rebuildFixture(t)
	}
	checkGolden(t, "list", "-dir", fixtureDir, "list")
	checkGolden(t, "show_version", "-dir", fixtureDir, "show", "2")
	checkGolden(t, "show_head", "-dir", fixtureDir, "show", "head")
	checkGolden(t, "show_tag", "-dir", fixtureDir, "show", "release")
	checkGolden(t, "verify", "-dir", fixtureDir, "verify")

	// show by content hash resolves to the same record as by version.
	reg, err := registry.Open(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := reg.ByVersion(2)
	reg.Close()
	if !ok {
		t.Fatal("fixture has no version 2")
	}
	byHash, _, code := runCLI(t, "-dir", fixtureDir, "show", registry.FormatHash(rec.ModelHash))
	if code != 0 {
		t.Fatalf("show by hash exited %d", code)
	}
	byVersion, err := os.ReadFile(filepath.Join("testdata", "show_version.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(byHash, byVersion) {
		t.Fatalf("show-by-hash diverges from show-by-version:\n%s\nvs\n%s", byHash, byVersion)
	}
}

// copyFixture clones the fixture registry into a temp dir so destructive
// commands can run against it.
func copyFixture(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(fixtureDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestGoldenGC plants orphans in a copy of the fixture (an unreferenced
// well-formed blob, temp-file debris, a superseded legacy artifact) and
// pins gc's removal transcript; a second gc removes nothing, and verify
// still passes.
func TestGoldenGC(t *testing.T) {
	dir := copyFixture(t)
	writes := map[string]string{
		filepath.Join("blobs", "deadbeefdeadbeef.rpm1"): "orphan",
		filepath.Join("blobs", "tmp-12345"):             "debris",
		"model-1-00000000000000aa.rpm1":                 "legacy",
	}
	for rel, content := range writes {
		path := filepath.Join(dir, rel)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		// Age the debris past GC's cross-process grace window (files in
		// blobs/ younger than it are deliberately left alone).
		old := time.Now().Add(-24 * time.Hour)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	out, errb, code := runCLI(t, "-dir", dir, "gc")
	if code != 0 {
		t.Fatalf("gc exited %d\nstderr:\n%s", code, errb)
	}
	golden := filepath.Join("testdata", "gc.golden")
	if *update {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("gc transcript diverged:\n--- got ---\n%s\n--- want ---\n%s", out, want)
		}
	}
	out, _, code = runCLI(t, "-dir", dir, "gc")
	if code != 0 || !strings.Contains(string(out), "removed 0 file(s)") {
		t.Fatalf("second gc should remove nothing, exited %d:\n%s", code, out)
	}
	out, errb, code = runCLI(t, "-dir", dir, "verify")
	if code != 0 || !strings.Contains(string(out), "OK") {
		t.Fatalf("post-gc verify exited %d:\n%s%s", code, out, errb)
	}
}

// TestVerifyRejectsTamper flips one manifest byte in a copy and proves the
// CLI exits non-zero with a diagnostic — the registry's tamper evidence
// surfaced at the operator level.
func TestVerifyRejectsTamper(t *testing.T) {
	dir := copyFixture(t)
	manifest := filepath.Join(dir, "manifest.rpl")
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(manifest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errb, code := runCLI(t, "-dir", dir, "verify")
	if code != 1 {
		t.Fatalf("verify of a tampered registry exited %d, want 1\nstderr:\n%s", code, errb)
	}
	if len(errb) == 0 {
		t.Fatal("tampered verify produced no diagnostic")
	}
}

// TestShowUnknownRef pins the not-found exit path.
func TestShowUnknownRef(t *testing.T) {
	for _, ref := range []string{"99", "fnv1a:0123456789abcdef", "no-such-tag"} {
		_, errb, code := runCLI(t, "-dir", fixtureDir, "show", ref)
		if code != 1 {
			t.Fatalf("show %s exited %d, want 1", ref, code)
		}
		if len(errb) == 0 {
			t.Fatalf("show %s produced no diagnostic", ref)
		}
	}
}

// TestUsageErrors pins exit 2 on malformed invocations.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"list"},
		{"-dir", fixtureDir},
		{"-dir", fixtureDir, "bogus"},
		{"-dir", fixtureDir, "show"},
		{"-dir", fixtureDir, "list", "extra"},
	}
	for _, args := range cases {
		if _, _, code := runCLI(t, args...); code != 2 {
			t.Fatalf("rpmodel %v exited %d, want 2", args, code)
		}
	}
}
