// Command rpplot clusters a 2-d point file with RP-DBSCAN and renders the
// result as an SVG scatter plot, colouring points by cluster with noise in
// gray — the visual check of the paper's Figure 16 for arbitrary data.
//
// Usage:
//
//	rpplot -eps 0.5 -minpts 10 -o out.svg input.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"rpdbscan/internal/core"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/plot"
	"rpdbscan/internal/pointio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpplot: ")
	eps := flag.Float64("eps", 0, "DBSCAN radius (required)")
	minPts := flag.Int("minpts", 0, "DBSCAN core threshold (required)")
	rho := flag.Float64("rho", 0.01, "approximation rate")
	out := flag.String("o", "out.svg", "output SVG path")
	width := flag.Int("width", 800, "canvas width")
	height := flag.Int("height", 600, "canvas height")
	title := flag.String("title", "", "plot title")
	flag.Parse()
	if *eps <= 0 || *minPts < 1 || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	pts, err := pointio.ReadCSV(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if pts.Dim < 2 {
		log.Fatalf("need at least 2 dimensions, input has %d", pts.Dim)
	}
	res, err := core.Run(pts, core.Config{
		Eps: *eps, MinPts: *minPts, Rho: *rho,
		NumPartitions: runtime.GOMAXPROCS(0),
	}, engine.New(runtime.GOMAXPROCS(0)))
	if err != nil {
		log.Fatal(err)
	}
	svg := plot.ScatterSVG(pts, res.Labels, plot.Options{
		Width: *width, Height: *height, Title: *title,
	})
	if err := os.WriteFile(*out, svg, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d points into %d clusters; wrote %s\n",
		pts.N(), res.NumClusters, *out)
}
