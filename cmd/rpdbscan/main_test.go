package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"rpdbscan/internal/serve"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./cmd/rpdbscan -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestMain lets the test binary impersonate the real CLI: a child process
// spawned with RPDBSCAN_BE_CLI=1 runs main() against its own arguments, so
// the golden test exercises the actual flag parsing, I/O, and exit paths
// without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("RPDBSCAN_BE_CLI") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI invokes the CLI (this test binary re-executed) with args.
func runCLI(t *testing.T, args ...string) (stdout, stderr []byte) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "RPDBSCAN_BE_CLI=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("cli %v failed: %v\nstderr:\n%s", args, err, errb.Bytes())
	}
	return out.Bytes(), errb.Bytes()
}

var fixtureArgs = []string{
	"-eps", "0.3", "-minpts", "4", "-workers", "4", "-partitions", "4",
	"-seed", "1", filepath.Join("testdata", "two_blobs.csv"),
}

// TestGoldenLabels pins the CLI's exact output on a checked-in fixture:
// the full label stream and the report fields that must stay stable
// (clusters found, points read). Any diff is either a real regression or
// an intentional change, in which case re-run with -update and review the
// golden diff.
func TestGoldenLabels(t *testing.T) {
	golden := filepath.Join("testdata", "two_blobs.labels.golden")
	out, _ := runCLI(t, fixtureArgs...)
	if *update {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("labels diverged from %s:\n got %d bytes\nwant %d bytes\n(review and re-run with -update if intentional)",
			golden, len(out), len(want))
	}
	// Pin the report-level facts too: exactly 2 clusters over 65 points.
	labels := map[string]int{}
	n := 0
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		labels[string(line)]++
		n++
	}
	if n != 65 {
		t.Fatalf("wrote %d labels, want 65", n)
	}
	clusters := 0
	for l := range labels {
		if l != "-1" {
			clusters++
		}
	}
	if clusters != 2 {
		t.Fatalf("fixture clustered into %d clusters, want 2 (labels seen: %v)", clusters, labels)
	}
	if labels["-1"] == 0 || labels["-1"] > 10 {
		t.Fatalf("noise count %d implausible for the fixture", labels["-1"])
	}
}

// TestGoldenStreamLabels: the streamed CLI path must produce the exact
// bytes of the non-stream golden — there is no separate stream golden,
// because the out-of-core pipeline's contract is byte-identical output.
// A tiny chunk size forces many chunks over the 65-point fixture, and the
// same -update convention applies (updating the shared golden re-pins
// both paths at once).
func TestGoldenStreamLabels(t *testing.T) {
	golden := filepath.Join("testdata", "two_blobs.labels.golden")
	// -stats exercises the streamed reporting path (it writes to stderr
	// only, so the stdout golden comparison is unaffected).
	out, stderr := runCLI(t, append([]string{"-stream", "-chunk-size", "7", "-stats"}, fixtureArgs...)...)
	if !bytes.Contains(stderr, []byte("spill_bytes")) {
		t.Fatalf("-stream -stats did not report spill accounting:\n%s", stderr)
	}
	if *update {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("-stream labels diverged from the non-stream golden %s: got %d bytes, want %d",
			golden, len(out), len(want))
	}
}

// TestGoldenProcBackend: the multi-process backend must produce the exact
// bytes of the in-process golden — like the stream path, there is no
// separate proc golden, because the transport's contract is byte-identical
// output. The worker subprocesses are this same test binary re-executed a
// second time: main() routes the grandchild into transport.MaybeWorker
// before any flag parsing, so no TestMain special-casing is needed.
func TestGoldenProcBackend(t *testing.T) {
	golden := filepath.Join("testdata", "two_blobs.labels.golden")
	out, _ := runCLI(t, append([]string{"-backend", "proc"}, fixtureArgs...)...)
	if *update {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("-backend=proc labels diverged from the in-process golden %s: got %d bytes, want %d",
			golden, len(out), len(want))
	}
	// And under process-level chaos — kills, wire corruption, injected
	// failures — still not a single byte may move.
	chaotic, stderr := runCLI(t, append([]string{
		"-backend", "proc", "-chaos-fail", "0.2", "-chaos-corrupt", "0.2",
		"-chaos-kill", "0.2", "-chaos-seed", "5",
	}, fixtureArgs...)...)
	if !bytes.Equal(chaotic, want) {
		t.Fatalf("-backend=proc with chaos changed the output labels\nstderr:\n%s", stderr)
	}
}

// TestProcBackendFlagErrors pins the proc backend's rejection paths:
// incompatible flag combinations and unknown backend names must exit
// non-zero before any clustering starts.
func TestProcBackendFlagErrors(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"stream":          {"-backend", "proc", "-stream"},
		"algo":            {"-backend", "proc", "-algo", "exact"},
		"unknown-backend": {"-backend", "warp"},
		"kill-needs-proc": {"-chaos-kill", "0.5"},
	}
	for name, extra := range cases {
		cmd := exec.Command(exe, append(extra, fixtureArgs...)...)
		cmd.Env = append(os.Environ(), "RPDBSCAN_BE_CLI=1")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s: invalid flag combination accepted:\n%s", name, out)
		}
	}
}

// TestStreamFlagIncompatibilities pins the error paths: -stream cannot
// serve features that need the full coordinate set in memory.
func TestStreamFlagIncompatibilities(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"labeled":    {"-stream", "-labeled"},
		"save-model": {"-stream", "-save-model", filepath.Join(t.TempDir(), "m")},
		"algo":       {"-stream", "-algo", "exact"},
	}
	for name, extra := range cases {
		cmd := exec.Command(exe, append(extra, fixtureArgs...)...)
		cmd.Env = append(os.Environ(), "RPDBSCAN_BE_CLI=1")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s: incompatible flag combination accepted:\n%s", name, out)
		}
	}
}

// TestGoldenTraceReport pins the stage structure of the engine report the
// CLI exports: stage names and phases are part of the observable contract
// (dashboards and the chrome trace key off them).
func TestGoldenTraceReport(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	args := append([]string{"-trace", tracePath, "-o", filepath.Join(t.TempDir(), "labels")}, fixtureArgs...)
	runCLI(t, args...)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var dto struct {
		Workers int `json:"workers"`
		Stages  []struct {
			Name  string `json:"name"`
			Phase string `json:"phase"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(data, &dto); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if dto.Workers != 4 {
		t.Fatalf("trace workers = %d, want 4", dto.Workers)
	}
	want := []string{
		"cell-partitioning", "dictionary-build", "dictionary-broadcast",
		"dictionary-load", "cell-graph-construction",
	}
	have := map[string]bool{}
	for _, s := range dto.Stages {
		have[s.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Fatalf("stage %q missing from trace (stages: %+v)", name, dto.Stages)
		}
	}
}

// TestChaosFlagsPreserveOutput is the CLI-level differential check: chaos
// flags must not change a single output byte.
func TestChaosFlagsPreserveOutput(t *testing.T) {
	clean, _ := runCLI(t, fixtureArgs...)
	chaotic, stderr := runCLI(t, append([]string{
		"-chaos-fail", "0.3", "-chaos-straggler", "0.3", "-chaos-corrupt", "0.3",
		"-chaos-seed", "9",
	}, fixtureArgs...)...)
	if !bytes.Equal(clean, chaotic) {
		t.Fatalf("chaos flags changed the output labels\nstderr:\n%s", stderr)
	}
	if !bytes.Contains(stderr, []byte("chaos enabled")) {
		t.Fatalf("chaos not announced on stderr:\n%s", stderr)
	}
}

// TestGoldenSaveModel pins the -save-model artifact byte for byte against
// the fixture model that cmd/rpserve serves in its own golden tests: the
// two CLIs must agree on the artifact. It then reloads the artifact and
// checks the served predictions are consistent with the golden labels the
// clustering itself produced.
func TestGoldenSaveModel(t *testing.T) {
	golden := filepath.Join("..", "rpserve", "testdata", "two_blobs.model")
	modelPath := filepath.Join(t.TempDir(), "two_blobs.model")
	stdout, _ := runCLI(t, append([]string{"-save-model", modelPath}, fixtureArgs...)...)
	got, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("-save-model artifact diverged from %s: got %d bytes, want %d (re-run with -update if intentional)",
				golden, len(got), len(want))
		}
	}

	// Reload and cross-check against the labels the run just printed:
	// every core training point must predict its own fitted label.
	m, err := serve.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	info := m.Info()
	if info.Points != 65 || info.Clusters != 2 || info.Dim != 2 {
		t.Fatalf("model info = %+v, want 65 points / 2 clusters / dim 2", info)
	}
	var labels []int
	for _, line := range bytes.Split(bytes.TrimSpace(stdout), []byte("\n")) {
		v, err := strconv.Atoi(string(line))
		if err != nil {
			t.Fatalf("bad label line %q: %v", line, err)
		}
		labels = append(labels, v)
	}
	if len(labels) != info.Points {
		t.Fatalf("printed %d labels, model has %d points", len(labels), info.Points)
	}
	for i := 0; i < m.Len(); i++ {
		if m.TrainingLabel(i) != labels[i] {
			t.Fatalf("point %d: artifact label %d != printed label %d", i, m.TrainingLabel(i), labels[i])
		}
		if !m.TrainingCore(i) {
			continue
		}
		pred, err := m.Predict(m.TrainingPoint(i))
		if err != nil {
			t.Fatal(err)
		}
		if pred.Label != labels[i] {
			t.Fatalf("core point %d predicted %d, fitted label %d", i, pred.Label, labels[i])
		}
	}
}

// TestSaveModelRequiresCoreFlags pins the error path: algorithms that do
// not report core points cannot serve a model.
func TestSaveModelRequiresCoreFlags(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-algo", "esp", "-save-model", filepath.Join(t.TempDir(), "m")}, fixtureArgs...)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "RPDBSCAN_BE_CLI=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-save-model with a coreless algorithm should fail:\n%s", out)
	}
}
