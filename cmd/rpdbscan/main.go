// Command rpdbscan clusters a point file with RP-DBSCAN or one of the
// baseline parallel DBSCAN algorithms and writes per-point cluster labels.
//
// Usage:
//
//	rpdbscan -eps 0.5 -minpts 10 [flags] input.csv
//
// The input is CSV (one point per line, comma-separated coordinates;
// lines starting with '#' are skipped) or the binary format written by
// rpdatagen when -binary is set. Output (stdout or -o file) is one label
// per input line, -1 for noise. With -labeled, the original coordinates
// are echoed with the label appended as a last column.
//
// Flags:
//
//	-eps        DBSCAN radius (required)
//	-minpts     DBSCAN core threshold (required)
//	-rho        approximation rate (default 0.01)
//	-algo       rp|esp|rbp|cbp|spark|ng|exact (default rp)
//	-backend    sim|proc (default sim). proc runs Phase I/II on worker
//	            subprocesses over local sockets (algo rp only); output is
//	            byte-identical to sim
//	-partitions number of splits (default workers)
//	-workers    parallel workers; with -backend=proc, worker processes
//	            (default GOMAXPROCS)
//	-binary       input is rpdatagen binary format
//	-stream       ingest the input out-of-core in bounded chunks (algo rp
//	              only; incompatible with -labeled and -save-model, which
//	              need the full coordinates in memory). Labels are
//	              identical to the in-memory run.
//	-chunk-size   points per streamed chunk (default 65536)
//	-labeled      echo coordinates with the label appended
//	-o            output path (default stdout)
//	-save-model   write the fitted model artifact here (serve it with rpserve)
//	-stats        print phase timings and dictionary stats to stderr
//	-stats-json   write run statistics as JSON to this path ("-" for stderr)
//	-trace        write the engine trace to this path
//	-trace-format report (engine JSON) or chrome (chrome://tracing timeline)
//	-log-level    debug|info|warn|error structured log level (stderr)
//	-log-format   text|json structured log encoding
//	-debug-addr   serve /metrics, /healthz, /debug/pprof, /debug/vars on
//	              this address
//
// Chaos flags (deterministic fault injection; results must be identical):
//
//	-chaos-fail      probability of failing a task attempt
//	-chaos-straggler probability of inflating a task into a straggler
//	-chaos-corrupt   probability of corrupting a payload chunk in transit
//	-chaos-kill      probability of SIGKILLing the worker process about to
//	                 serve a task attempt (-backend=proc only)
//	-chaos-delay     virtual straggler inflation (default 20ms)
//	-chaos-seed      seed for the injected fault schedule
package main

import (
	"bufio"
	"flag"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strconv"

	"rpdbscan/internal/baselines/cbp"
	"rpdbscan/internal/baselines/esp"
	"rpdbscan/internal/baselines/ngdbscan"
	"rpdbscan/internal/baselines/rbp"
	"rpdbscan/internal/baselines/regionsplit"
	"rpdbscan/internal/chaos"
	"rpdbscan/internal/core"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/obs"
	"rpdbscan/internal/pointio"
	"rpdbscan/internal/serve"
	"rpdbscan/internal/transport"
)

// fatal logs the error through the structured logger and exits.
func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	// A process spawned with the worker environment marker set never comes
	// back from this call: it serves tasks until the driver's pipe closes.
	transport.MaybeWorker()
	eps := flag.Float64("eps", 0, "DBSCAN radius (required)")
	minPts := flag.Int("minpts", 0, "DBSCAN core threshold (required)")
	rho := flag.Float64("rho", 0.01, "approximation rate")
	algo := flag.String("algo", "rp", "algorithm: rp|esp|rbp|cbp|spark|ng|exact")
	backend := flag.String("backend", core.BackendSim, "execution backend: sim|proc (algo rp only)")
	workerMode := flag.Bool("worker", false, "run as a transport worker process (spawned internally by -backend=proc)")
	partitions := flag.Int("partitions", 0, "number of splits (default workers)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
	binary := flag.Bool("binary", false, "input is binary point format")
	stream := flag.Bool("stream", false, "ingest the input out-of-core in bounded chunks (algo rp only)")
	chunkSize := flag.Int("chunk-size", 0, "points per streamed chunk (default 65536)")
	labeled := flag.Bool("labeled", false, "echo coordinates with label appended")
	out := flag.String("o", "", "output path (default stdout)")
	saveModel := flag.String("save-model", "", "write the fitted model artifact here (algo rp or exact)")
	stats := flag.Bool("stats", false, "print run statistics to stderr")
	statsJSON := flag.String("stats-json", "", `write run statistics as JSON to this path ("-" for stderr)`)
	trace := flag.String("trace", "", "write the engine trace to this path")
	traceFormat := flag.String("trace-format", "report", "trace encoding: "+obs.TraceFormats)
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/vars on this address")
	seed := flag.Int64("seed", 1, "partitioning seed")
	chaosFail := flag.Float64("chaos-fail", 0, "chaos: probability of failing a task attempt")
	chaosStraggler := flag.Float64("chaos-straggler", 0, "chaos: probability of inflating a task into a straggler")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "chaos: probability of corrupting a payload chunk")
	chaosKill := flag.Float64("chaos-kill", 0, "chaos: probability of SIGKILLing a worker process per task attempt (-backend=proc)")
	chaosDelay := flag.Duration("chaos-delay", 0, "chaos: virtual straggler inflation (default 20ms)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault-schedule seed")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	log, err := logCfg.Setup(os.Stderr)
	if err != nil {
		slog.Error("rpdbscan", "err", err)
		os.Exit(2)
	}
	log = log.With("cmd", "rpdbscan")
	if *workerMode {
		// Manual worker mode (the subprocess spawner uses the environment
		// marker instead): serve until stdin closes.
		transport.RunWorker(os.Stdin, os.Stdout)
		return
	}
	if *eps <= 0 || *minPts < 1 || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	switch *backend {
	case core.BackendSim, "":
	case core.BackendProc:
		if *algo != "rp" {
			log.Error("-backend=proc supports only -algo rp", "algo", *algo)
			os.Exit(2)
		}
		if *stream {
			log.Error("-backend=proc is incompatible with -stream")
			os.Exit(2)
		}
	default:
		log.Error("unknown backend", "backend", *backend)
		os.Exit(2)
	}
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, log); err != nil {
			fatal(log, "debug server", err)
		}
	}
	if *stream {
		// Streaming never materialises the input, so anything needing the
		// full coordinate set in memory is off the table.
		switch {
		case *algo != "rp":
			log.Error("-stream supports only -algo rp", "algo", *algo)
			os.Exit(2)
		case *labeled:
			log.Error("-stream is incompatible with -labeled (coordinates are not kept in memory)")
			os.Exit(2)
		case *saveModel != "":
			log.Error("-stream is incompatible with -save-model (coordinates are not kept in memory)")
			os.Exit(2)
		}
	}
	var pts *geom.Points
	if !*stream {
		pts, err = readInput(flag.Arg(0), *binary)
		if err != nil {
			fatal(log, "read input", err)
		}
	}

	k := *partitions
	if k == 0 {
		k = *workers
	}
	cl := engine.New(*workers)
	cl.Sink = obs.NewSink(log)
	var inj *chaos.Injector
	if *chaosFail > 0 || *chaosStraggler > 0 || *chaosCorrupt > 0 || *chaosKill > 0 {
		if *chaosKill > 0 && *backend != core.BackendProc {
			log.Error("-chaos-kill needs -backend=proc (there is no worker process to kill)")
			os.Exit(2)
		}
		inj, err = chaos.New(chaos.Config{
			Seed: *chaosSeed, FailProb: *chaosFail, StragglerProb: *chaosStraggler,
			CorruptProb: *chaosCorrupt, KillProb: *chaosKill, StragglerDelay: *chaosDelay,
		})
		if err != nil {
			fatal(log, "chaos config", err)
		}
		cl.Injector = inj
		log.Info("chaos enabled", "seed", *chaosSeed, "fail", *chaosFail,
			"straggler", *chaosStraggler, "corrupt", *chaosCorrupt, "kill", *chaosKill)
	}
	if *backend == core.BackendProc {
		opts := transport.Options{}
		if inj != nil {
			opts.Injector = inj
			opts.Killer = inj
		}
		tr, err := transport.NewProc(*workers, opts)
		if err != nil {
			fatal(log, "start workers", err)
		}
		defer tr.Close()
		tr.Bind(cl)
		log.Info("proc backend up", "workers", *workers)
	}
	var labels []int
	var clusters int
	var corePoints []bool // set by algorithms that judge core points
	var runInfo obs.RunInfo
	switch *algo {
	case "rp":
		cfg := core.Config{
			Eps: *eps, MinPts: *minPts, Rho: *rho,
			NumPartitions: k, Seed: *seed, Backend: *backend,
		}
		var res *core.Result
		if *stream {
			res, err = runStreamed(flag.Arg(0), *binary, core.StreamConfig{
				Config: cfg, ChunkSize: *chunkSize,
			}, cl)
			if err != nil {
				fatal(log, "clustering", err)
			}
			runInfo = obs.RunInfo{
				Points:       res.PointsProcessed,
				Streamed:     true,
				Chunks:       res.Stream.Chunks,
				SpillBytes:   res.Stream.SpillBytes,
				SpillReloads: res.Stream.SpillReloads,
			}
		} else {
			res, err = core.Run(pts, cfg, cl)
			if err != nil {
				fatal(log, "clustering", err)
			}
			runInfo = obs.RunInfo{Points: int64(pts.N())}
		}
		labels, clusters = res.Labels, res.NumClusters
		corePoints = res.CorePoint
		runInfo.Algorithm = "rp"
		runInfo.Clusters = res.NumClusters
		runInfo.Cells = res.NumCells
		runInfo.SubCells = res.NumSubCells
		runInfo.DictBytes = res.DictBytes
		obs.CountRun(cl.Report(), runInfo)
	case "esp", "rbp", "cbp", "spark":
		cfg := regionsplit.Config{
			Eps: *eps, MinPts: *minPts, Rho: *rho,
			NumRegions: k, ExactLocal: *algo == "spark",
		}
		var res *regionsplit.Result
		switch *algo {
		case "esp":
			res = esp.Run(pts, cfg, cl)
		case "rbp":
			res = rbp.Run(pts, cfg, cl)
		default:
			res = cbp.Run(pts, cfg, cl)
		}
		labels, clusters = res.Labels, res.NumClusters
	case "ng":
		res := ngdbscan.Run(pts, ngdbscan.Config{Eps: *eps, MinPts: *minPts, Seed: *seed}, cl)
		labels, clusters = res.Labels, res.NumClusters
	case "exact":
		res := dbscan.Run(pts, *eps, *minPts)
		labels, clusters = res.Labels, res.NumClusters
		corePoints = res.CorePoint
	default:
		log.Error("unknown algorithm", "algo", *algo)
		os.Exit(1)
	}

	if *algo != "rp" {
		// Baselines report no dictionary; counters and run facts are the
		// input size and cluster count.
		obs.Counters.PointsRead.Add(int64(pts.N()))
		runInfo = obs.RunInfo{Algorithm: *algo, Points: int64(pts.N()), Clusters: clusters}
	}
	// One snapshot backs every stats surface: the -stats table, the
	// run-complete log line, -stats-json, and the /metrics gauges.
	snap := obs.TakeSnapshot(cl.Report(), runInfo)
	snap.Publish()
	if *stats {
		log.Info("run complete", snap.LogArgs()...)
		os.Stderr.WriteString(snap.String())
	}
	if *statsJSON != "" {
		w := io.Writer(os.Stderr)
		if *statsJSON != "-" {
			f, err := os.Create(*statsJSON)
			if err != nil {
				fatal(log, "create stats file", err)
			}
			defer f.Close()
			w = f
		}
		if err := snap.WriteJSON(w); err != nil {
			fatal(log, "write stats json", err)
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(log, "create trace file", err)
		}
		if err := obs.WriteTrace(f, cl.Report(), *traceFormat); err != nil {
			fatal(log, "write trace", err)
		}
		if err := f.Close(); err != nil {
			fatal(log, "close trace file", err)
		}
		log.Info("wrote trace", "path", *trace, "format", *traceFormat)
	}
	if *saveModel != "" {
		if corePoints == nil {
			log.Error("save-model requires an algorithm that reports core points", "algo", *algo, "want", "rp or exact")
			os.Exit(1)
		}
		m, err := serve.New(pts.Coords, pts.Dim, labels, corePoints, *eps, *minPts, *rho, clusters)
		if err != nil {
			fatal(log, "build model", err)
		}
		f, err := os.Create(*saveModel)
		if err != nil {
			fatal(log, "create model file", err)
		}
		if err := m.Save(f); err != nil {
			fatal(log, "save model", err)
		}
		if err := f.Close(); err != nil {
			fatal(log, "close model file", err)
		}
		info := m.Info()
		log.Info("wrote model", "path", *saveModel, "bytes", info.ArtifactBytes,
			"core_points", info.CorePoints, "checksum", info.Checksum)
	}
	if err := writeOutput(*out, pts, labels, *labeled); err != nil {
		fatal(log, "write output", err)
	}
}

// runStreamed clusters the input file out-of-core: the file is read once
// in bounded chunks, and the pipeline spills to temp files instead of
// holding the points.
func runStreamed(path string, binary bool, cfg core.StreamConfig, cl *engine.Cluster) (*core.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var src pointio.Source
	if binary {
		src, err = pointio.NewBinaryChunkReader(f)
	} else {
		src, err = pointio.NewCSVChunkReader(f)
	}
	if err != nil {
		return nil, err
	}
	return core.RunStream(src, cfg, cl)
}

func readInput(path string, binary bool) (*geom.Points, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if binary {
		return pointio.ReadBinary(f)
	}
	return pointio.ReadCSV(f)
}

func writeOutput(path string, pts *geom.Points, labels []int, labeled bool) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for i, l := range labels {
		if labeled {
			row := pts.At(i)
			for _, v := range row {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
				bw.WriteByte(',')
			}
		}
		bw.WriteString(strconv.Itoa(l))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
