package rpdbscan

import (
	"fmt"

	"rpdbscan/internal/registry"
	"rpdbscan/internal/serve"
)

// ModelRegistry is read access to a content-addressed model registry —
// the directory rpserve's online loop publishes into: verified artifacts
// under blobs/<hash>.rpm1 plus an append-only, tamper-evident manifest of
// fit records. Open it to audit lineage, fetch any historical generation
// by hash or version, or verify the whole store; the rpmodel command is
// the CLI face of the same API.
//
// A directory holding only legacy model-<version>-<hash>.rpm1 artifacts
// (written before the registry existed) is imported on first open, so
// OpenModelRegistry subsumes LatestModel.
type ModelRegistry struct {
	reg *registry.Registry
}

// FitRecord is one manifest entry: the identity and provenance of a
// published model generation. Hashes are rendered "fnv1a:%016x", matching
// Model checksums everywhere else in the API; Parent is "" for a
// generation with no recorded predecessor.
type FitRecord struct {
	Version   int64
	Hash      string
	Parent    string
	Watermark int64
	Points    int64
	Clusters  int64
	Bytes     int64
	FitNs     int64
	Tag       string
}

func publicRecord(rec registry.Record) FitRecord {
	parent := ""
	if rec.Parent != 0 {
		parent = registry.FormatHash(rec.Parent)
	}
	return FitRecord{
		Version:   rec.Version,
		Hash:      registry.FormatHash(rec.ModelHash),
		Parent:    parent,
		Watermark: rec.Watermark,
		Points:    rec.Points,
		Clusters:  rec.Clusters,
		Bytes:     rec.Bytes,
		FitNs:     rec.FitNs,
		Tag:       rec.Tag,
	}
}

// RegistryAudit is Verify's report: what a full re-verification covered.
type RegistryAudit struct {
	// Records is the number of manifest records whose chain verified.
	Records int
	// Blobs and BlobBytes count the distinct artifacts re-hashed.
	Blobs     int
	BlobBytes int64
	// ExternalParents counts lineage links to generations fitted outside
	// this registry (for example a -model boot artifact).
	ExternalParents int
}

// OpenModelRegistry opens the registry rooted at dir, rebuilding the
// lookup index from the manifest and rejecting any tampered or truncated
// ledger. A missing directory is created empty.
func OpenModelRegistry(dir string) (*ModelRegistry, error) {
	reg, err := registry.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	return &ModelRegistry{reg: reg}, nil
}

// Head returns the most recently published generation's record, if any.
func (r *ModelRegistry) Head() (FitRecord, bool) {
	rec, ok := r.reg.Head()
	if !ok {
		return FitRecord{}, false
	}
	return publicRecord(rec), true
}

// Records returns every manifest record in fit order, head last.
func (r *ModelRegistry) Records() []FitRecord {
	recs := r.reg.Records()
	out := make([]FitRecord, len(recs))
	for i, rec := range recs {
		out[i] = publicRecord(rec)
	}
	return out
}

// Model fetches a generation by content hash ("fnv1a:HEX" or bare hex),
// verifying the artifact against both its embedded checksum and its
// address before decoding.
func (r *ModelRegistry) Model(hash string) (*Model, error) {
	sum, err := registry.ParseHash(hash)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	blob, err := r.reg.Blob(sum)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	sm, err := serve.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	return &Model{m: sm}, nil
}

// ModelAt fetches the generation recorded at version (the latest record
// when the ledger holds several, e.g. after a rollback republish).
func (r *ModelRegistry) ModelAt(version int64) (*Model, error) {
	rec, ok := r.reg.ByVersion(version)
	if !ok {
		return nil, fmt.Errorf("rpdbscan: no registry record for version %d", version)
	}
	return r.Model(registry.FormatHash(rec.ModelHash))
}

// Verify re-reads the manifest and HEAD seal from disk, walks the full
// hash chain, and re-hashes every referenced artifact. Any flipped byte,
// truncation, or reorder anywhere in the store fails it.
func (r *ModelRegistry) Verify() (RegistryAudit, error) {
	rep, err := r.reg.Verify()
	if err != nil {
		return RegistryAudit{}, fmt.Errorf("rpdbscan: %w", err)
	}
	return RegistryAudit{
		Records:         rep.Records,
		Blobs:           rep.Blobs,
		BlobBytes:       rep.BlobBytes,
		ExternalParents: rep.ExternalParents,
	}, nil
}

// Close seals and releases the registry.
func (r *ModelRegistry) Close() error { return r.reg.Close() }
