package rpdbscan

import (
	"bytes"
	"testing"
)

// TestModelSaveLoadPredict exercises the public serving API end to end:
// fit, package as a model, save, reload, and predict — with the reloaded
// model agreeing with the original on every training point.
func TestModelSaveLoadPredict(t *testing.T) {
	pts := twoBlobs(400, 4)
	opts := Options{Eps: 0.6, MinPts: 5}
	res, err := Cluster(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClusters() != res.NumClusters || m.Dim() != 2 {
		t.Fatalf("model reports %d clusters dim %d, fit had %d clusters dim 2", m.NumClusters(), m.Dim(), res.NumClusters)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Save must be canonical: saving the reloaded model reproduces the
	// artifact byte for byte.
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("save -> load -> save not byte-identical: %d vs %d bytes", buf.Len(), again.Len())
	}

	// Core training points keep their fitted label through the full
	// round trip; batch agrees with single-point predictions.
	labels, err := loaded.PredictBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got, err := loaded.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != labels[i] {
			t.Fatalf("point %d: Predict %d != PredictBatch %d", i, got, labels[i])
		}
		if res.Core[i] && got != res.Labels[i] {
			t.Fatalf("core point %d predicted %d, fitted %d", i, got, res.Labels[i])
		}
	}

	// A point far from both blobs is noise.
	if got, err := loaded.Predict([]float64{100, -100}); err != nil || got != Noise {
		t.Fatalf("far point predicted %d (err %v), want Noise", got, err)
	}

	// Dimension mismatch is an error, not a panic.
	if _, err := loaded.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("dim mismatch accepted")
	}

	// A corrupted artifact must be rejected on load.
	raw := buf.Bytes()
	raw[len(raw)/3] ^= 0x40
	if _, err := LoadModel(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt artifact accepted")
	}
}
