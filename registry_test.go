package rpdbscan_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpdbscan"
)

// fitRegistryModel fits a tiny deterministic clustering and returns the
// model plus its artifact bytes.
func fitRegistryModel(t *testing.T) (*rpdbscan.Model, []byte) {
	t.Helper()
	points := [][]float64{
		{1, 1}, {1.1, 1}, {0.9, 1.1}, {1, 0.9},
		{-1, -1}, {-1.1, -0.9}, {-0.9, -1}, {9, 9},
	}
	opts := rpdbscan.Options{Eps: 0.5, MinPts: 2, Partitions: 2, Workers: 2, Seed: 1}
	res, err := rpdbscan.Cluster(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

// TestModelRegistryImportsLegacyDir proves OpenModelRegistry subsumes
// LatestModel: a directory holding only a legacy versioned artifact
// (model-<version>-<hash>.rpm1, the pre-registry layout) imports on open,
// serves the same model by head / hash / version, and passes a full
// verify — while LatestModel keeps reading the same directory unchanged.
func TestModelRegistryImportsLegacyDir(t *testing.T) {
	m, art := fitRegistryModel(t)
	dir := t.TempDir()
	hex := strings.TrimPrefix(m.Checksum(), "fnv1a:")
	legacy := filepath.Join(dir, fmt.Sprintf("model-7-%s.rpm1", hex))
	if err := os.WriteFile(legacy, art, 0o644); err != nil {
		t.Fatal(err)
	}

	// The legacy reader sees the artifact...
	lm, v, err := rpdbscan.LatestModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lm == nil || v != 7 {
		t.Fatalf("LatestModel = %v version %d, want version 7", lm, v)
	}

	// ...and the registry imports it with identical identity.
	reg, err := rpdbscan.OpenModelRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	head, ok := reg.Head()
	if !ok {
		t.Fatal("registry empty after legacy import")
	}
	if head.Version != 7 || head.Hash != m.Checksum() {
		t.Fatalf("head = %+v, want version 7 hash %s", head, m.Checksum())
	}
	for name, load := range map[string]func() (*rpdbscan.Model, error){
		"by_hash":    func() (*rpdbscan.Model, error) { return reg.Model(head.Hash) },
		"by_version": func() (*rpdbscan.Model, error) { return reg.ModelAt(7) },
	} {
		got, err := load()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Checksum() != m.Checksum() {
			t.Fatalf("%s checksum %s, want %s", name, got.Checksum(), m.Checksum())
		}
		want, err := m.Predict([]float64{1.02, 0.98})
		if err != nil {
			t.Fatal(err)
		}
		if label, err := got.Predict([]float64{1.02, 0.98}); err != nil || label != want {
			t.Fatalf("%s predict = %d (%v), want %d", name, label, err, want)
		}
	}
	audit, err := reg.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if audit.Records != 1 || audit.Blobs != 1 {
		t.Fatalf("audit = %+v, want 1 record / 1 blob", audit)
	}
	if recs := reg.Records(); len(recs) != 1 || recs[0].Tag != "imported" {
		t.Fatalf("records = %+v, want one record tagged imported", recs)
	}

	// LatestModel still answers over the untouched legacy file.
	if lm2, v2, err := rpdbscan.LatestModel(dir); err != nil || lm2 == nil || v2 != 7 {
		t.Fatalf("LatestModel after import = %v version %d (%v)", lm2, v2, err)
	}
}

// TestModelRegistryUnknownLookups pins the not-found paths.
func TestModelRegistryUnknownLookups(t *testing.T) {
	reg, err := rpdbscan.OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, ok := reg.Head(); ok {
		t.Fatal("empty registry reports a head")
	}
	if _, err := reg.Model("fnv1a:0123456789abcdef"); err == nil {
		t.Fatal("unknown hash resolved")
	}
	if _, err := reg.ModelAt(1); err == nil {
		t.Fatal("unknown version resolved")
	}
	if _, err := reg.Model("not-a-hash"); err == nil {
		t.Fatal("malformed hash accepted")
	}
}
