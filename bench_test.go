package rpdbscan

// One testing.B benchmark per table and figure of the paper's evaluation,
// each delegating to the harness entry that regenerates the artifact (at a
// reduced scale so `go test -bench=.` completes quickly; `cmd/rpbench`
// runs the full-scale versions). Micro-benchmarks for the hot paths —
// region queries, dictionary encode/decode, and the full pipeline at
// several sizes — follow.

import (
	"fmt"
	"testing"

	"rpdbscan/internal/core"
	"rpdbscan/internal/datagen"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/dict"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/grid"
	"rpdbscan/internal/harness"
)

// benchScale is deliberately small: every experiment must fit a bench
// iteration.
func benchScale() harness.Scale {
	s := harness.QuickScale()
	s.N = 2000
	return s
}

func BenchmarkFigure11Elapsed(b *testing.B) {
	s := benchScale()
	// One data set and two eps points per iteration keep the benchmark
	// representative yet affordable; rpbench runs the full sweep.
	cfg := harness.EfficiencyConfig{
		Datasets:   []string{"SimGeoLife"},
		EpsIndices: []int{1, 3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Efficiency(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Breakdown(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Breakdown(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13Imbalance(b *testing.B) {
	s := benchScale()
	cfg := harness.EfficiencyConfig{
		Datasets:   []string{"SimGeoLife"},
		Algorithms: []string{harness.AlgoESP, harness.AlgoRP},
		EpsIndices: []int{3},
	}
	for i := 0; i < b.N; i++ {
		rows, err := harness.Efficiency(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Imbalance < 1 {
				b.Fatal("imbalance below 1")
			}
		}
	}
}

func BenchmarkFigure14Duplication(b *testing.B) {
	s := benchScale()
	cfg := harness.EfficiencyConfig{
		Datasets:   []string{"SimOSM"},
		Algorithms: []string{harness.AlgoESP, harness.AlgoRBP, harness.AlgoRP},
		EpsIndices: []int{3},
	}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Efficiency(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15SpeedUp(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.SpeedUp(s, harness.AlgoRP, harness.AlgoESP); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Accuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Accuracy(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5DictionarySize(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.DictionarySize(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7EdgeReduction(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.EdgeReduction(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure18SkewStats(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		harness.SkewStats(s)
	}
}

func BenchmarkTable8SkewDictionary(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.SkewDictionarySize(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure19SkewImpact(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.SkewImpact(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure20And21SizeScaling(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.SizeScaling(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhase2Batching(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Phase2(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.RandIndex != 1 {
				b.Fatalf("mode %s diverged: Rand index %v", r.Mode, r.RandIndex)
			}
		}
	}
}

// ---- Micro-benchmarks for the hot paths.

// BenchmarkRegionQuery measures one (eps,rho)-region query against a
// dictionary of SimCosmo cells.
func BenchmarkRegionQuery(b *testing.B) {
	for _, dim := range []int{2, 3, 13} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			var ds datagen.Dataset
			switch dim {
			case 2:
				ds = datagen.SimOSM(5000, 1)
			case 3:
				ds = datagen.SimCosmo(5000, 1)
			default:
				ds = datagen.SimTeraClick(5000, 1)
			}
			eps := ds.Eps10 / 2
			g := grid.Build(ds.Points, eps)
			params := dict.Params{Eps: eps, Rho: 0.01, Dim: dim}
			entries := make([]dict.CellEntry, 0, g.NumCells())
			for _, c := range g.Cells {
				entries = append(entries, dict.BuildEntry(c, ds.Points, params))
			}
			d := dict.Build(entries, params, 0)
			q := dict.NewQuerier(d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Count(ds.Points.At(i % ds.Points.N()))
			}
		})
	}
}

// BenchmarkDictEncodeDecode measures the broadcast serialisation round
// trip.
func BenchmarkDictEncodeDecode(b *testing.B) {
	ds := datagen.SimCosmo(10000, 1)
	eps := ds.Eps10 / 2
	g := grid.Build(ds.Points, eps)
	params := dict.Params{Eps: eps, Rho: 0.01, Dim: 3}
	entries := make([]dict.CellEntry, 0, g.NumCells())
	for _, c := range g.Cells {
		entries = append(entries, dict.BuildEntry(c, ds.Points, params))
	}
	d := dict.Build(entries, params, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := d.Encode()
		if _, err := dict.Decode(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPDBSCAN measures the full pipeline at increasing sizes (the
// Figure 20 axis).
func BenchmarkRPDBSCAN(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := datagen.SimCosmo(n, 1)
			cfg := core.Config{Eps: ds.Eps10 / 2, MinPts: ds.MinPts, Rho: 0.01, NumPartitions: 8}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ds.Points, cfg, engine.New(8)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRho sweeps the approximation rate: coarser rho means a
// smaller dictionary and cheaper queries at some accuracy risk (the Table
// 4 / Table 5 trade-off).
func BenchmarkAblationRho(b *testing.B) {
	ds := datagen.SimCosmo(8000, 1)
	for _, rho := range []float64{0.25, 0.05, 0.01} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			cfg := core.Config{Eps: ds.Eps10 / 2, MinPts: ds.MinPts, Rho: rho, NumPartitions: 8}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ds.Points, cfg, engine.New(8)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitions sweeps k: more partitions shrink per-task
// work but add merge rounds.
func BenchmarkAblationPartitions(b *testing.B) {
	ds := datagen.SimCosmo(8000, 1)
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := core.Config{Eps: ds.Eps10 / 2, MinPts: ds.MinPts, Rho: 0.01, NumPartitions: k}
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ds.Points, cfg, engine.New(8)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactDBSCAN is the single-machine reference cost.
func BenchmarkExactDBSCAN(b *testing.B) {
	ds := datagen.SimCosmo(8000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dbscan.Run(ds.Points, ds.Eps10/2, ds.MinPts)
	}
}
