package rpdbscan

// Parameter-selection and capacity-planning helpers: the k-distance
// heuristic commonly used to choose Eps, dictionary size estimation (the
// broadcast payload of Table 5), and additional clustering-similarity
// measures.

import (
	"fmt"
	"sort"

	"rpdbscan/internal/dict"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/grid"
	"rpdbscan/internal/kdtree"
	"rpdbscan/internal/metrics"
)

// KDistances returns, sorted ascending, each point's distance to its k-th
// nearest neighbor (excluding itself). Plotting this curve and picking the
// "knee" is the standard heuristic for choosing Eps: points left of the
// knee are inside clusters, points right of it are noise. k is typically
// MinPts-1.
func KDistances(points [][]float64, k int) ([]float64, error) {
	if len(points) == 0 {
		return nil, nil
	}
	if k < 1 {
		return nil, fmt.Errorf("rpdbscan: k must be >= 1, got %d", k)
	}
	pts, err := geom.FromSlice(points, len(points[0]))
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	n := pts.N()
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return []float64{0}, nil
	}
	tree := kdtree.Build(pts, nil)
	out := make([]float64, n)
	// Expanding-radius search: grow until at least k+1 points (self
	// included) are inside, then take the (k+1)-th smallest distance.
	for i := 0; i < n; i++ {
		p := pts.At(i)
		r := initialRadius(pts)
		var dists []float64
		for {
			dists = dists[:0]
			tree.Visit(p, r, func(j int) {
				if j != i {
					dists = append(dists, geom.Dist(p, pts.At(j)))
				}
			})
			if len(dists) >= k {
				break
			}
			r *= 2
		}
		sort.Float64s(dists)
		out[i] = dists[k-1]
	}
	sort.Float64s(out)
	return out, nil
}

// initialRadius guesses a starting search radius from the data extent and
// count, assuming roughly uniform spread.
func initialRadius(pts *geom.Points) float64 {
	box := geom.NewBox(pts.Dim)
	n := pts.N()
	for i := 0; i < n; i++ {
		box.Extend(pts.At(i))
	}
	widest := 0.0
	for i := 0; i < pts.Dim; i++ {
		if w := box.Max[i] - box.Min[i]; w > widest {
			widest = w
		}
	}
	if widest == 0 {
		return 1
	}
	return widest / float64(n) * 16
}

// SuggestEps returns a heuristic Eps for the given MinPts: the k-distance
// (k = MinPts-1) at the knee of the sorted curve, located as the point of
// maximum distance from the chord between the curve's endpoints.
func SuggestEps(points [][]float64, minPts int) (float64, error) {
	ds, err := KDistances(points, minPts-1)
	if err != nil {
		return 0, err
	}
	if len(ds) == 0 {
		return 0, fmt.Errorf("rpdbscan: no points")
	}
	if len(ds) < 3 {
		return ds[len(ds)-1], nil
	}
	// Maximum perpendicular distance from the (0, ds[0]) - (n-1, ds[n-1])
	// chord.
	n := float64(len(ds) - 1)
	x0, y0 := 0.0, ds[0]
	x1, y1 := n, ds[len(ds)-1]
	dx, dy := x1-x0, y1-y0
	best, bestD := 0, 0.0
	for i := range ds {
		d := dy*float64(i) - dx*ds[i] + x1*y0 - y1*x0
		if d < 0 {
			d = -d
		}
		if d > bestD {
			bestD, best = d, i
		}
	}
	return ds[best], nil
}

// DictionaryEstimate summarises the two-level cell dictionary a Cluster
// call would broadcast, letting users budget memory before running (the
// capacity planning behind Table 5).
type DictionaryEstimate struct {
	Cells    int
	SubCells int
	// Bits is the analytical size of Lemma 4.3; Bytes the actual encoded
	// payload size.
	Bits  int64
	Bytes int
}

// EstimateDictionary builds the dictionary for the given parameters and
// reports its size without running the clustering phases.
func EstimateDictionary(points [][]float64, eps, rho float64) (DictionaryEstimate, error) {
	var est DictionaryEstimate
	if len(points) == 0 {
		return est, nil
	}
	if eps <= 0 {
		return est, fmt.Errorf("rpdbscan: eps must be positive, got %g", eps)
	}
	if rho == 0 {
		rho = 0.01
	}
	if rho < 0 {
		return est, fmt.Errorf("rpdbscan: rho must be positive, got %g", rho)
	}
	pts, err := geom.FromSlice(points, len(points[0]))
	if err != nil {
		return est, fmt.Errorf("rpdbscan: %w", err)
	}
	g := grid.Build(pts, eps)
	params := dict.Params{Eps: eps, Rho: rho, Dim: pts.Dim}
	entries := make([]dict.CellEntry, 0, g.NumCells())
	for _, c := range g.Cells {
		entries = append(entries, dict.BuildEntry(c, pts, params))
	}
	stats := dict.StatsOf(entries, params)
	est.Cells = stats.NumCells
	est.SubCells = stats.NumSubCells
	est.Bits = stats.SizeBits
	est.Bytes = len(dict.EncodeEntries(entries, params))
	return est, nil
}

// AdjustedRandIndex returns the chance-corrected Rand index between two
// clusterings: 1 for identical, ~0 for independent. Negative labels are
// all treated as one noise cluster.
func AdjustedRandIndex(a, b []int) float64 {
	return metrics.AdjustedRandIndex(a, b)
}

// NormalizedMutualInformation returns the NMI between two clusterings in
// [0, 1]. Negative labels are all treated as one noise cluster.
func NormalizedMutualInformation(a, b []int) float64 {
	return metrics.NormalizedMutualInformation(a, b)
}
