// Package rpdbscan is a pure-Go implementation of RP-DBSCAN, the parallel
// DBSCAN algorithm based on pseudo random partitioning and a two-level cell
// dictionary (Song and Lee, SIGMOD 2018).
//
// RP-DBSCAN partitions data at the granularity of small grid cells, deals
// the cells to workers at random (which balances load regardless of data
// skew and duplicates no points), and compensates for the lost spatial
// contiguity by broadcasting a compact approximate summary of the whole
// data set — the two-level cell dictionary — with which each worker can
// answer eps-neighborhood queries locally. Local results are cell graphs,
// merged in a tournament into global clusters.
//
// The entry point is Cluster:
//
//	res, err := rpdbscan.Cluster(points, rpdbscan.Options{
//		Eps:    0.5,
//		MinPts: 10,
//	})
//
// The clustering is equivalent to exact DBSCAN up to the rho-approximation
// of region queries; at the default Rho of 0.01 the paper (and this
// implementation's test suite) observes Rand index 1.0 against the exact
// algorithm.
//
// ExactDBSCAN provides the exact reference algorithm, and RandIndex the
// standard clustering-similarity measure, so users can validate parameter
// choices on samples of their own data.
package rpdbscan

import (
	"fmt"
	"runtime"
	"time"

	"rpdbscan/internal/core"
	"rpdbscan/internal/dbscan"
	"rpdbscan/internal/engine"
	"rpdbscan/internal/geom"
	"rpdbscan/internal/metrics"
	"rpdbscan/internal/obs"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Options configures Cluster.
type Options struct {
	// Eps is the DBSCAN neighborhood radius. Required.
	Eps float64
	// MinPts is the DBSCAN core threshold (neighborhood includes the
	// point itself). Required.
	MinPts int
	// Rho is the approximation rate of the two-level cell dictionary; a
	// point is approximated by a sub-cell of diagonal Rho*Eps. Zero
	// defaults to 0.01, at which clustering is DBSCAN-equivalent in
	// practice.
	Rho float64
	// Partitions is the number of pseudo random partitions (parallel
	// work units). Zero defaults to Workers.
	Partitions int
	// Workers is the parallelism used to execute partitions. Zero
	// defaults to GOMAXPROCS.
	Workers int
	// MaxCellsPerSubDict bounds sub-dictionary size for dictionary
	// defragmentation; zero keeps a single sub-dictionary, which is fine
	// unless the dictionary outgrows worker memory.
	MaxCellsPerSubDict int
	// Seed drives the random cell-to-partition assignment. The
	// clustering result is independent of the seed; only load balance
	// details vary.
	Seed int64
}

// PhaseStats reports the time spent in one phase of the algorithm.
type PhaseStats struct {
	// Phase is "I-1" (partitioning), "I-2" (dictionary), "II" (cell
	// graph construction), "III-1" (merging), or "III-2" (labeling).
	Phase string
	// Elapsed is the simulated parallel elapsed time of the phase on
	// Workers workers.
	Elapsed time.Duration
}

// Stats carries run statistics.
type Stats struct {
	// Phases lists per-phase elapsed times in execution order.
	Phases []PhaseStats
	// Elapsed is the total simulated elapsed time.
	Elapsed time.Duration
	// Wall is the real wall-clock time spent.
	Wall time.Duration
	// DictionaryBytes is the size of the broadcast two-level cell
	// dictionary.
	DictionaryBytes int
	// Cells and SubCells are the dictionary's level sizes.
	Cells, SubCells int
	// LoadImbalance is the slowest/fastest ratio across partition tasks
	// of the cell-graph-construction phase.
	LoadImbalance float64
}

// Result is the output of Cluster.
type Result struct {
	// Labels assigns each input point a cluster id in [0, NumClusters),
	// or Noise.
	Labels []int
	// Core marks the points determined to be DBSCAN core points.
	Core []bool
	// NumClusters is the number of clusters found.
	NumClusters int
	// Stats reports timing and dictionary statistics.
	Stats Stats
	// Streaming reports out-of-core pipeline statistics; nil unless the
	// result came from ClusterStream.
	Streaming *StreamingStats
}

// Cluster runs RP-DBSCAN over points (each an equal-length coordinate
// slice).
func Cluster(points [][]float64, opts Options) (*Result, error) {
	if len(points) == 0 {
		return &Result{Labels: []int{}, Core: []bool{}}, nil
	}
	pts, err := geom.FromSlice(points, len(points[0]))
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	return ClusterFlat(pts.Coords, pts.Dim, opts)
}

// ClusterFlat runs RP-DBSCAN over n = len(coords)/dim points stored
// point-major in a flat coordinate slice. It avoids the per-point slice
// overhead of Cluster for large inputs.
func ClusterFlat(coords []float64, dim int, opts Options) (*Result, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rpdbscan: dimension must be >= 1, got %d", dim)
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("rpdbscan: %d coordinates not divisible by dimension %d", len(coords), dim)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := core.Config{
		Eps:                opts.Eps,
		MinPts:             opts.MinPts,
		Rho:                opts.Rho,
		NumPartitions:      opts.Partitions,
		MaxCellsPerSubDict: opts.MaxCellsPerSubDict,
		Seed:               opts.Seed,
	}
	if cfg.Rho == 0 {
		cfg.Rho = 0.01
	}
	cl := engine.New(workers)
	// Counters-only sink: task retries, stage counts, and broadcast bytes
	// flow into the obs.Counters expvar registry (no logging unless the
	// caller installed a debug-level slog default).
	cl.Sink = obs.NewSink(nil)
	res, err := core.Run(&geom.Points{Dim: dim, Coords: coords}, cfg, cl)
	if err != nil {
		return nil, err
	}
	info := obs.RunInfo{
		Algorithm: "rp",
		Points:    int64(len(coords) / dim),
		Clusters:  res.NumClusters,
		Cells:     res.NumCells,
		SubCells:  res.NumSubCells,
		DictBytes: res.DictBytes,
	}
	obs.CountRun(res.Report, info)
	obs.TakeSnapshot(res.Report, info).Publish()
	out := &Result{
		Labels:      res.Labels,
		Core:        res.CorePoint,
		NumClusters: res.NumClusters,
		Stats: Stats{
			Elapsed:         res.Report.SimulatedElapsed(),
			Wall:            res.Report.WallElapsed(),
			DictionaryBytes: res.DictBytes,
			Cells:           res.NumCells,
			SubCells:        res.NumSubCells,
			LoadImbalance:   1,
		},
	}
	if s := res.Report.Stage("cell-graph-construction"); s != nil {
		out.Stats.LoadImbalance = s.Imbalance()
	}
	breakdown, order := res.Report.PhaseBreakdown()
	for _, ph := range order {
		out.Stats.Phases = append(out.Stats.Phases, PhaseStats{Phase: ph, Elapsed: breakdown[ph]})
	}
	return out, nil
}

// ClusterSizes returns the number of points in each cluster, indexed by
// cluster id.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// NoiseCount returns the number of noise points.
func (r *Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l < 0 {
			n++
		}
	}
	return n
}

// Summary formats a one-paragraph human-readable description of the
// result.
func (r *Result) Summary() string {
	sizes := r.ClusterSizes()
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return fmt.Sprintf(
		"%d points in %d clusters (largest %d), %d noise; dictionary %d cells / %d sub-cells (%d bytes); elapsed %v on simulated workers (load imbalance %.2f)",
		len(r.Labels), r.NumClusters, largest, r.NoiseCount(),
		r.Stats.Cells, r.Stats.SubCells, r.Stats.DictionaryBytes,
		r.Stats.Elapsed, r.Stats.LoadImbalance)
}

// ExactDBSCAN runs the original exact DBSCAN algorithm — the ground truth
// RP-DBSCAN approximates. Use it on samples to validate Eps/MinPts.
func ExactDBSCAN(points [][]float64, eps float64, minPts int) (*Result, error) {
	if len(points) == 0 {
		return &Result{Labels: []int{}, Core: []bool{}}, nil
	}
	pts, err := geom.FromSlice(points, len(points[0]))
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	r := dbscan.Run(pts, eps, minPts)
	return &Result{Labels: r.Labels, Core: r.CorePoint, NumClusters: r.NumClusters}, nil
}

// RandIndex returns the Rand index between two clusterings given as label
// vectors of equal length: the fraction of point pairs both clusterings
// treat the same way. Negative labels are all treated as one noise
// cluster.
func RandIndex(a, b []int) float64 {
	return metrics.RandIndex(a, b)
}
