package rpdbscan

import (
	"bytes"
	"slices"
	"testing"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/pointio"
)

// TestClusterStreamMatchesCluster: the public streaming entry point must
// reproduce the in-memory entry point exactly, from both supported
// on-disk formats.
func TestClusterStreamMatchesCluster(t *testing.T) {
	points := twoBlobs(600, 21)
	opts := Options{Eps: 0.5, MinPts: 5, Partitions: 4, Workers: 4, Seed: 3}
	want, err := Cluster(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := geom.FromSlice(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, binBuf bytes.Buffer
	if err := pointio.WriteCSV(&csvBuf, pts); err != nil {
		t.Fatal(err)
	}
	if err := pointio.WriteBinary(&binBuf, pts); err != nil {
		t.Fatal(err)
	}
	sources := map[string]func() (StreamSource, error){
		"csv":    func() (StreamSource, error) { return CSVSource(bytes.NewReader(csvBuf.Bytes())) },
		"binary": func() (StreamSource, error) { return BinarySource(bytes.NewReader(binBuf.Bytes())) },
	}
	for name, open := range sources {
		src, err := open()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ClusterStream(src, StreamOptions{
			Options:   opts,
			ChunkSize: 97,
			SpillDir:  t.TempDir(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !slices.Equal(got.Labels, want.Labels) {
			t.Fatalf("%s: streamed labels diverge from Cluster", name)
		}
		if !slices.Equal(got.Core, want.Core) {
			t.Fatalf("%s: streamed core flags diverge from Cluster", name)
		}
		if got.NumClusters != want.NumClusters {
			t.Fatalf("%s: NumClusters %d, want %d", name, got.NumClusters, want.NumClusters)
		}
		if got.Streaming == nil || got.Streaming.Chunks != (600+96)/97 {
			t.Fatalf("%s: streaming stats %+v", name, got.Streaming)
		}
		if got.Streaming.SpillBytes <= 0 || got.Streaming.SpillReloads <= 0 {
			t.Fatalf("%s: empty spill accounting %+v", name, got.Streaming)
		}
	}
	if _, err := ClusterStream(nil, StreamOptions{Options: opts}); err == nil {
		t.Fatal("nil source accepted")
	}
}
