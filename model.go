package rpdbscan

import (
	"fmt"
	"io"

	"rpdbscan/internal/geom"
	"rpdbscan/internal/serve"
)

// Model is a fitted clustering packaged for serving: the training points,
// their labels and core flags, the fit parameters, and a kd-tree over the
// core points. A Model is immutable and safe for concurrent use, persists
// to a versioned, checksummed binary artifact (Save/LoadModel), and
// answers the DBSCAN predict query: a new point within Eps of any core
// point inherits that core's cluster, otherwise it is noise.
//
// Build one from a Cluster result, save it, and serve it with the rpserve
// command:
//
//	res, _ := rpdbscan.Cluster(points, opts)
//	m, _ := res.Model(points, opts)
//	m.Save(f)
type Model struct {
	m *serve.Model
}

// Model packages the result fitted over points (the same slice passed to
// Cluster) with the options that produced it into a servable Model.
func (r *Result) Model(points [][]float64, opts Options) (*Model, error) {
	if len(points) != len(r.Labels) {
		return nil, fmt.Errorf("rpdbscan: %d points for a result over %d points", len(points), len(r.Labels))
	}
	dim := 0
	if len(points) > 0 {
		dim = len(points[0])
	}
	pts, err := geom.FromSlice(points, dim)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	return r.ModelFlat(pts.Coords, dim, opts)
}

// ModelFlat is Model for flat point-major coordinates, pairing with
// ClusterFlat.
func (r *Result) ModelFlat(coords []float64, dim int, opts Options) (*Model, error) {
	rho := opts.Rho
	if rho == 0 {
		rho = 0.01
	}
	m, err := serve.New(coords, dim, r.Labels, r.Core, opts.Eps, opts.MinPts, rho, r.NumClusters)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	return &Model{m: m}, nil
}

// Save writes the model's binary artifact to w. The encoding is canonical:
// saving a loaded model reproduces the artifact byte for byte, and any
// single-byte corruption of an artifact is rejected by checksum on load.
func (m *Model) Save(w io.Writer) error {
	return m.m.Save(w)
}

// LoadModel reads a model artifact written by Save (or rpdbscan
// -save-model), verifying its checksum and structural invariants.
func LoadModel(r io.Reader) (*Model, error) {
	sm, err := serve.Load(r)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	return &Model{m: sm}, nil
}

// LatestModel loads the newest valid versioned artifact
// (model-<version>-<hash>.rpm1) from a model directory written by
// rpserve's online refit loop, returning the model and its version.
// Corrupt, truncated, or misnamed artifacts are skipped in favour of the
// next-newest valid one; an empty or artifact-free directory returns
// (nil, 0, nil).
func LatestModel(dir string) (*Model, int64, error) {
	sm, v, err := serve.LoadNewest(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("rpdbscan: %w", err)
	}
	if sm == nil {
		return nil, 0, nil
	}
	return &Model{m: sm}, v, nil
}

// Predict classifies one point under the fitted clustering: the cluster id
// of the nearest core point within Eps, or Noise when none qualifies.
func (m *Model) Predict(point []float64) (int, error) {
	pred, err := m.m.Predict(point)
	if err != nil {
		return Noise, fmt.Errorf("rpdbscan: %w", err)
	}
	return pred.Label, nil
}

// PredictBatch classifies points, returning one label (or Noise) each.
func (m *Model) PredictBatch(points [][]float64) ([]int, error) {
	preds, err := m.m.PredictBatch(points)
	if err != nil {
		return nil, fmt.Errorf("rpdbscan: %w", err)
	}
	labels := make([]int, len(preds))
	for i, p := range preds {
		labels[i] = p.Label
	}
	return labels, nil
}

// NumClusters returns the number of clusters the model was fitted with.
func (m *Model) NumClusters() int { return m.m.Info().Clusters }

// Checksum returns the model's artifact checksum ("fnv1a:%016x") — its
// content address in a ModelRegistry.
func (m *Model) Checksum() string { return m.m.Info().Checksum }

// Dim returns the model's point dimensionality.
func (m *Model) Dim() int { return m.m.Dim() }
